(** Discrete-event simulation engine.

    The engine owns a virtual clock and an event queue (an arena-backed
    timer wheel, see {!Event_queue}). Components schedule callbacks at
    future instants; [run] pops events in timestamp order (ties broken
    by scheduling order) and executes them, advancing the clock. All
    times are in seconds of simulated time.

    Scheduling is allocation-free in steady state. [schedule] and
    [schedule_at] take a [unit -> unit] closure; hot paths that would
    otherwise close over fresh state per frame should pre-allocate one
    [int -> unit] callback and pass the varying part through
    {!schedule_fn}'s integer argument instead. *)

type t

type event_id
(** Handle for cancelling a scheduled event. Handles are
    generation-tagged integers (no allocation): once the event fires or
    is cancelled the handle goes stale, and [cancel]/[is_scheduled] on a
    stale handle return [false] rather than touching a recycled slot. *)

val never : event_id
(** A handle naming no event ([cancel] returns [false]). The idle value
    for "maybe armed" fields, avoiding an [option] per arm. *)

val create : unit -> t
(** Fresh engine with clock at [0.]. *)

val now : t -> float
(** Current simulated time. *)

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** [schedule t ~delay f] runs [f ()] at [now t +. delay]. Raises
    [Invalid_argument] on a negative delay — the same contract as
    {!schedule_at} (historically negative delays were silently clamped
    to [0.], which masked caller bugs). *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** [schedule_at t ~time f] runs [f] at absolute [time]; raises
    [Invalid_argument] if [time] is in the simulated past. *)

val schedule_fn : t -> delay:float -> fn:(int -> unit) -> arg:int -> event_id
(** Like {!schedule}, but runs [fn arg] at expiry. [fn] can be
    pre-allocated once per component and reused for every frame, with
    the per-event state packed into [arg] — no closure is created per
    call. [arg] must fit in 62 bits (it is tag-packed alongside the
    callback). Raises [Invalid_argument] on a negative delay. *)

val schedule_at_fn : t -> time:float -> fn:(int -> unit) -> arg:int -> event_id
(** {!schedule_fn} at an absolute time; raises [Invalid_argument] if
    [time] is in the simulated past. *)

val cancel : t -> event_id -> bool
(** Cancel a pending event. [false] if it already fired, was cancelled,
    or the handle is stale/[never]. *)

val is_scheduled : t -> event_id -> bool
(** Whether the handle names an event that has neither fired nor been
    cancelled. *)

val pending : t -> int
(** Number of scheduled, not-yet-fired events. *)

val step : t -> bool
(** Execute the next event, if any. Returns [false] when the queue is
    empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** [run t] executes events until the queue drains. [?until] stops the
    clock at that instant (events at exactly [until] still fire);
    [?max_events] bounds the number of events executed — a guard against
    runaway simulations. On reaching [until], the clock is advanced to
    [until] even if no event fired there. *)

val run_until_quiet : t -> unit
(** Alias for [run] without bounds; drains the queue. *)
