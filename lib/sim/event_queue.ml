(* Implicit 4-ary min-heap over (time, seq). An event's id IS its heap
   entry: cancellation flips a state bit in the entry (O(1), no lookup),
   and pop skips cancelled entries when they surface at the root. This
   replaces an earlier design that kept two hash tables (pending +
   cancelled) beside a binary heap — the per-event hashing dominated the
   scheduling hot path. The 4-ary layout halves the sift depth and keeps
   sibling entries adjacent in memory. *)

type state = Pending | Cancelled | Fired

type 'a entry = {
  time : float;
  seq : int;
  payload : 'a;
  mutable state : state;
}

type 'a id = 'a entry

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int; (* entries in [heap], live or cancelled *)
  mutable live : int; (* entries in [heap] with state = Pending *)
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; live = 0; next_seq = 0 }

let length t = t.live

let is_empty t = t.live = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Hole-based sift: move the hole, write the entry once at its slot. *)

let sift_up t i entry =
  let heap = t.heap in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    let p = Array.unsafe_get heap parent in
    if before entry p then begin
      Array.unsafe_set heap !i p;
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set heap !i entry

let sift_down t i entry =
  let heap = t.heap and size = t.size in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let first_child = (4 * !i) + 1 in
    if first_child >= size then continue := false
    else begin
      let last_child = min (first_child + 3) (size - 1) in
      let best = ref first_child in
      for c = first_child + 1 to last_child do
        if before (Array.unsafe_get heap c) (Array.unsafe_get heap !best) then
          best := c
      done;
      let b = Array.unsafe_get heap !best in
      if before b entry then begin
        Array.unsafe_set heap !i b;
        i := !best
      end
      else continue := false
    end
  done;
  Array.unsafe_set heap !i entry

let grow t entry =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let nheap = Array.make ncap entry in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let add t ~time payload =
  let entry = { time; seq = t.next_seq; payload; state = Pending } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.size <- t.size + 1;
  t.live <- t.live + 1;
  sift_up t (t.size - 1) entry;
  entry

let cancel t entry =
  match entry.state with
  | Pending ->
      entry.state <- Cancelled;
      t.live <- t.live - 1;
      true
  | Cancelled | Fired -> false

(* Remove the heap root (refilling the hole with the last entry),
   skipping cancelled roots. *)
let rec pop_live t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then sift_down t 0 t.heap.(t.size);
    match top.state with
    | Cancelled -> pop_live t
    | Pending | Fired -> Some top
  end

let rec drop_cancelled_head t =
  if t.size > 0 && t.heap.(0).state = Cancelled then begin
    t.size <- t.size - 1;
    if t.size > 0 then sift_down t 0 t.heap.(t.size);
    drop_cancelled_head t
  end

let peek_time t =
  drop_cancelled_head t;
  if t.size = 0 then None else Some t.heap.(0).time

let pop t =
  match pop_live t with
  | None -> None
  | Some e ->
      e.state <- Fired;
      t.live <- t.live - 1;
      Some (e.time, e.payload)
