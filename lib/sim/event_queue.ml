(* Arena + timer wheel + two (time, seq) heaps. See the .mli for the
   architecture; the notes here are about the invariants.

   Every event occupies an arena slot (parallel arrays: time, seq,
   payload, aux, state, generation, chain link). A slot is in exactly
   one of three index tiers, chosen by its tick = floor(time * 2^14)
   relative to the cursor tick C:

     near heap   tick <= C          exact (time, seq) 4-ary min-heap
     wheel       C < tick < C + W   unsorted bucket chain, bucket = tick mod W
     overflow    tick >= C + W      (time, seq) 4-ary min-heap

   Any event in the near heap precedes any event in the wheel or
   overflow: near events have time < (C+1)*q and the others have
   time >= (C+1)*q, where q is the tick quantum. Equal times imply equal
   ticks, so ties are always resolved inside the near heap by the seq
   number — pop order is identical to a single global (time, seq) heap.

   Since a wheel event's tick lies in the open window (C, C+W), at most
   one tick can map to a given bucket at a time: a bucket never mixes
   ticks. The cursor only moves forward, to the smallest populated tick
   (so it never skips an event), and adds behind the cursor fall into
   the near heap where exact ordering covers them.

   The tick quantum is a power of two (2^-14 s ~ 61 us) so time*2^14 is
   exact float scaling, and W = 1024 puts the wheel horizon at ~62.5 ms
   — wide enough for frame serialisation and protocol timers at the
   simulated link rates, while checkpoint-scale timers spill into the
   overflow heap, which is just the old heap discipline.

   States form an explicit machine: Free -> Pending -> (Cancelled |
   popped -> Free), with Cancelled -> Free when the index tier lazily
   drops the slot. A Free slot reached through an index tier violates
   the invariants and asserts, rather than being silently tolerated.
   Cancelling clears the payload slot immediately (the index removal is
   lazy but the reference drop is not), and popping clears it on the
   spot — vacated slots never pin payload closures. *)

type 'a t = {
  dummy : 'a;
  (* arena *)
  mutable cap : int;
  mutable times : float array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable auxs : int array;
  mutable states : int array;
  mutable gens : int array;
  mutable link : int array; (* free list / bucket chains; -1 terminates *)
  mutable free_head : int;
  mutable next_seq : int;
  mutable live : int;
  (* near heap: slots with tick <= cursor, exact (time, seq) order *)
  mutable near : int array;
  mutable near_size : int;
  (* timer wheel: slots with cursor < tick < cursor + wheel_size *)
  wheel : int array; (* bucket -> chain head slot, or -1 *)
  occ : int array; (* bucket-occupancy bitmap, 32 bits per word *)
  mutable occupied : int; (* number of non-empty buckets *)
  mutable cursor : int; (* current tick *)
  (* overflow heap: slots with tick >= cursor + wheel_size at insertion *)
  mutable over : int array;
  mutable over_size : int;
}

type id = int

let never = -1

(* slot states *)
let st_free = 0

let st_pending = 1

let st_cancelled = 2

(* id = (generation lsl slot_bits) lor slot *)
let slot_bits = 24

let slot_mask = (1 lsl slot_bits) - 1

let wheel_bits = 10

let wheel_size = 1 lsl wheel_bits

let wheel_mask = wheel_size - 1

let ticks_per_sec = 16384. (* quantum 2^-14 s *)

(* Beyond this, tick computation saturates (int_of_float would overflow
   around 2^62 / 2^14 s). Saturated ticks always land in the overflow
   heap, which orders by exact time, so far timestamps stay correct. *)
let far_time = 1e13

let far_tick = max_int - (2 * wheel_size)

let create ?(capacity = 256) ~dummy () =
  let cap = max 16 capacity in
  {
    dummy;
    cap;
    times = Array.make cap 0.;
    seqs = Array.make cap 0;
    payloads = Array.make cap dummy;
    auxs = Array.make cap 0;
    states = Array.make cap st_free;
    gens = Array.make cap 0;
    link = Array.init cap (fun i -> if i + 1 = cap then -1 else i + 1);
    free_head = 0;
    next_seq = 0;
    live = 0;
    near = Array.make 64 0;
    near_size = 0;
    wheel = Array.make wheel_size (-1);
    occ = Array.make (wheel_size / 32) 0;
    occupied = 0;
    cursor = 0;
    over = Array.make 64 0;
    over_size = 0;
  }

let length t = t.live

let is_empty t = t.live = 0

(* --- arena -------------------------------------------------------------- *)

let grow_arena t =
  let ncap = min (2 * t.cap) (slot_mask + 1) in
  if ncap <= t.cap then failwith "Event_queue: arena full";
  let blit_int src =
    let dst = Array.make ncap 0 in
    Array.blit src 0 dst 0 t.cap;
    dst
  in
  let ntimes = Array.make ncap 0. in
  Array.blit t.times 0 ntimes 0 t.cap;
  t.times <- ntimes;
  t.seqs <- blit_int t.seqs;
  t.auxs <- blit_int t.auxs;
  t.gens <- blit_int t.gens;
  let npayloads = Array.make ncap t.dummy in
  Array.blit t.payloads 0 npayloads 0 t.cap;
  t.payloads <- npayloads;
  let nstates = Array.make ncap st_free in
  Array.blit t.states 0 nstates 0 t.cap;
  t.states <- nstates;
  let nlink = Array.make ncap (-1) in
  Array.blit t.link 0 nlink 0 t.cap;
  for i = t.cap to ncap - 1 do
    nlink.(i) <- (if i + 1 = ncap then t.free_head else i + 1)
  done;
  t.link <- nlink;
  t.free_head <- t.cap;
  t.cap <- ncap

let alloc_slot t =
  if t.free_head < 0 then grow_arena t;
  let slot = t.free_head in
  t.free_head <- Array.unsafe_get t.link slot;
  slot

let free_slot t slot =
  Array.unsafe_set t.states slot st_free;
  Array.unsafe_set t.payloads slot t.dummy;
  Array.unsafe_set t.gens slot (Array.unsafe_get t.gens slot + 1);
  Array.unsafe_set t.link slot t.free_head;
  t.free_head <- slot

(* --- (time, seq) heaps over slot indices -------------------------------- *)

let[@inline] before t a b =
  let ta = Array.unsafe_get t.times a and tb = Array.unsafe_get t.times b in
  ta < tb
  || (ta = tb && Array.unsafe_get t.seqs a < Array.unsafe_get t.seqs b)

(* Hole-based 4-ary sift shared by the near and overflow heaps. *)

let sift_up t heap i slot =
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    let p = Array.unsafe_get heap parent in
    if before t slot p then begin
      Array.unsafe_set heap !i p;
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set heap !i slot

let sift_down t heap size i slot =
  let i = ref i in
  let continue = ref true in
  while !continue do
    let first_child = (4 * !i) + 1 in
    if first_child >= size then continue := false
    else begin
      let last_child = min (first_child + 3) (size - 1) in
      let best = ref first_child in
      for c = first_child + 1 to last_child do
        if before t (Array.unsafe_get heap c) (Array.unsafe_get heap !best)
        then best := c
      done;
      let b = Array.unsafe_get heap !best in
      if before t b slot then begin
        Array.unsafe_set heap !i b;
        i := !best
      end
      else continue := false
    end
  done;
  Array.unsafe_set heap !i slot

let grow_heap heap size =
  if size = Array.length heap then begin
    let nheap = Array.make (2 * size) 0 in
    Array.blit heap 0 nheap 0 size;
    nheap
  end
  else heap

let near_push t slot =
  t.near <- grow_heap t.near t.near_size;
  t.near_size <- t.near_size + 1;
  sift_up t t.near (t.near_size - 1) slot

let near_pop_root t =
  let root = Array.unsafe_get t.near 0 in
  t.near_size <- t.near_size - 1;
  if t.near_size > 0 then
    sift_down t t.near t.near_size 0 (Array.unsafe_get t.near t.near_size);
  root

let over_push t slot =
  t.over <- grow_heap t.over t.over_size;
  t.over_size <- t.over_size + 1;
  sift_up t t.over (t.over_size - 1) slot

let over_pop_root t =
  let root = Array.unsafe_get t.over 0 in
  t.over_size <- t.over_size - 1;
  if t.over_size > 0 then
    sift_down t t.over t.over_size 0 (Array.unsafe_get t.over t.over_size);
  root

(* --- wheel bitmap ------------------------------------------------------- *)

let occ_set t b =
  let w = b lsr 5 and m = 1 lsl (b land 31) in
  let old = Array.unsafe_get t.occ w in
  if old land m = 0 then begin
    Array.unsafe_set t.occ w (old lor m);
    t.occupied <- t.occupied + 1
  end

let occ_clear t b =
  let w = b lsr 5 and m = 1 lsl (b land 31) in
  Array.unsafe_set t.occ w (Array.unsafe_get t.occ w land lnot m);
  t.occupied <- t.occupied - 1

(* 32-bit count-trailing-zeros via de Bruijn multiplication. *)
let debruijn32 = 0x077CB531

let ctz_table =
  let tbl = Array.make 32 0 in
  for i = 0 to 31 do
    tbl.((debruijn32 lsl i land 0xFFFFFFFF) lsr 27) <- i
  done;
  tbl

let[@inline] ctz32 x =
  Array.unsafe_get ctz_table (((x land -x) * debruijn32 land 0xFFFFFFFF) lsr 27)

(* Tick of the earliest occupied wheel bucket, or max_int. Scanning the
   bitmap circularly from the bucket after the cursor visits buckets in
   increasing-tick order, because bucket b at circular distance d from
   there holds exactly tick cursor + 1 + d. *)
let next_wheel_tick t =
  if t.occupied = 0 then max_int
  else begin
    let start = (t.cursor + 1) land wheel_mask in
    let nwords = wheel_size lsr 5 in
    let w0 = start lsr 5 and b0 = start land 31 in
    let first = Array.unsafe_get t.occ w0 lsr b0 in
    let bucket =
      if first <> 0 then start + ctz32 first
      else begin
        let found = ref (-1) in
        let k = ref 1 in
        while !found < 0 do
          (* the last stop is w0 again, for the bits below b0 *)
          let w = (w0 + !k) mod nwords in
          let bits =
            if !k = nwords then
              Array.unsafe_get t.occ w0 land ((1 lsl b0) - 1)
            else Array.unsafe_get t.occ w
          in
          if bits <> 0 then found := (w lsl 5) + ctz32 bits else incr k
          (* t.occupied > 0 guarantees termination *)
        done;
        !found
      end
    in
    t.cursor + 1 + ((bucket - start) land wheel_mask)
  end

(* --- tier selection ----------------------------------------------------- *)

(* The tick computation is written out at each use site rather than
   shared through a float-taking helper: non-flambda builds box floats
   at non-inlined call boundaries, and add/pop must stay allocation
   free. *)

let enqueue_slot t slot tick =
  if tick <= t.cursor then near_push t slot
  else if tick - t.cursor < wheel_size then begin
    let b = tick land wheel_mask in
    Array.unsafe_set t.link slot (Array.unsafe_get t.wheel b);
    Array.unsafe_set t.wheel b slot;
    occ_set t b
  end
  else over_push t slot

(* [@inline] is load-bearing: [time] arrives as an unboxed local in the
   add paths, and a non-inlined call here would box it per event. *)
let[@inline always] fill_slot t slot time aux payload =
  Array.unsafe_set t.times slot time;
  Array.unsafe_set t.seqs slot t.next_seq;
  t.next_seq <- t.next_seq + 1;
  Array.unsafe_set t.payloads slot payload;
  Array.unsafe_set t.auxs slot aux;
  Array.unsafe_set t.states slot st_pending;
  t.live <- t.live + 1

let add_aux t ~time ~aux payload =
  let slot = alloc_slot t in
  fill_slot t slot time aux payload;
  let tick =
    if time >= far_time then far_tick
    else int_of_float (time *. ticks_per_sec)
  in
  enqueue_slot t slot tick;
  (Array.unsafe_get t.gens slot lsl slot_bits) lor slot

let add t ~time payload = add_aux t ~time ~aux:0 payload

let add_after t ~clock ~delay ~aux payload =
  let time = Array.unsafe_get clock 0 +. delay in
  let slot = alloc_slot t in
  fill_slot t slot time aux payload;
  let tick =
    if time >= far_time then far_tick
    else int_of_float (time *. ticks_per_sec)
  in
  enqueue_slot t slot tick;
  (Array.unsafe_get t.gens slot lsl slot_bits) lor slot

(* --- handles ------------------------------------------------------------ *)

let[@inline] holder t id =
  (* slot index when the handle is current, -1 when stale or [never] *)
  if id < 0 then -1
  else begin
    let slot = id land slot_mask in
    if
      slot < t.cap
      && (Array.unsafe_get t.gens slot lsl slot_bits) lor slot = id
    then slot
    else -1
  end

let cancel t id =
  let slot = holder t id in
  if slot < 0 then false
  else begin
    let st = Array.unsafe_get t.states slot in
    if st = st_pending then begin
      Array.unsafe_set t.states slot st_cancelled;
      (* index removal is lazy; the payload reference drop is not *)
      Array.unsafe_set t.payloads slot t.dummy;
      t.live <- t.live - 1;
      true
    end
    else false
  end

let is_pending t id =
  let slot = holder t id in
  slot >= 0 && Array.unsafe_get t.states slot = st_pending

(* --- cursor advance ----------------------------------------------------- *)

(* Drop cancelled slots surfacing at the overflow root so its tick is
   the tick of a live event. *)
let rec over_drop_cancelled t =
  if t.over_size > 0 then begin
    let root = Array.unsafe_get t.over 0 in
    let st = Array.unsafe_get t.states root in
    if st = st_cancelled then begin
      ignore (over_pop_root t : int);
      free_slot t root;
      over_drop_cancelled t
    end
    else assert (st = st_pending)
  end

(* Move every event of the next populated tick into the near heap.
   Returns false when no events remain outside the near heap. *)
let advance_fill t =
  over_drop_cancelled t;
  let wheel_tick = next_wheel_tick t in
  let over_tick =
    if t.over_size = 0 then max_int
    else begin
      let time = Array.unsafe_get t.times (Array.unsafe_get t.over 0) in
      if time >= far_time then far_tick
      else int_of_float (time *. ticks_per_sec)
    end
  in
  let tick = if wheel_tick < over_tick then wheel_tick else over_tick in
  if tick = max_int then false
  else begin
    t.cursor <- tick;
    if wheel_tick = tick then begin
      let b = tick land wheel_mask in
      let slot = ref (Array.unsafe_get t.wheel b) in
      Array.unsafe_set t.wheel b (-1);
      occ_clear t b;
      while !slot >= 0 do
        let s = !slot in
        slot := Array.unsafe_get t.link s;
        let st = Array.unsafe_get t.states s in
        if st = st_pending then near_push t s
        else if st = st_cancelled then free_slot t s
        else assert false
      done
    end;
    if over_tick = tick then begin
      let continue = ref true in
      while !continue && t.over_size > 0 do
        let root = Array.unsafe_get t.over 0 in
        let time = Array.unsafe_get t.times root in
        let root_tick =
          if time >= far_time then far_tick
          else int_of_float (time *. ticks_per_sec)
        in
        if root_tick = tick then begin
          ignore (over_pop_root t : int);
          let st = Array.unsafe_get t.states root in
          if st = st_pending then near_push t root
          else if st = st_cancelled then free_slot t root
          else assert false
        end
        else continue := false
      done
    end;
    true
  end

(* Establish: the near-heap root is a live event, or the queue is empty.
   Cancelled slots surfacing at the near root are dropped here — the one
   place a cancelled slot leaves the near heap, so the state machine is
   checked exhaustively. *)
let rec ensure_near t =
  let continue = ref true in
  while !continue && t.near_size > 0 do
    let root = Array.unsafe_get t.near 0 in
    let st = Array.unsafe_get t.states root in
    if st = st_cancelled then begin
      ignore (near_pop_root t : int);
      free_slot t root
    end
    else if st = st_pending then continue := false
    else assert false
  done;
  if t.near_size = 0 && advance_fill t then ensure_near t

(* --- pop ---------------------------------------------------------------- *)

let peek_time t =
  ensure_near t;
  if t.near_size = 0 then None
  else Some (Array.unsafe_get t.times (Array.unsafe_get t.near 0))

let pop t =
  ensure_near t;
  if t.near_size = 0 then None
  else begin
    let root = near_pop_root t in
    let time = Array.unsafe_get t.times root in
    let payload = Array.unsafe_get t.payloads root in
    t.live <- t.live - 1;
    free_slot t root;
    Some (time, payload)
  end

type run_stop = Drained | Deferred | Max_events

let pop_run t ~clock ~until ~max_events ~k =
  let executed = ref 0 in
  let stop = ref Drained in
  let running = ref true in
  while !running do
    if !executed >= max_events then begin
      stop := Max_events;
      running := false
    end
    else begin
      ensure_near t;
      if t.near_size = 0 then begin
        stop := Drained;
        running := false
      end
      else begin
        let root = Array.unsafe_get t.near 0 in
        let time = Array.unsafe_get t.times root in
        if time > until then begin
          stop := Deferred;
          running := false
        end
        else begin
          ignore (near_pop_root t : int);
          Array.unsafe_set clock 0 time;
          let payload = Array.unsafe_get t.payloads root in
          let aux = Array.unsafe_get t.auxs root in
          t.live <- t.live - 1;
          (* recycle before running: the callback may reuse the slot *)
          free_slot t root;
          incr executed;
          k payload aux
        end
      end
    end
  done;
  !stop
