(** Priority queue of timestamped events.

    Events live in an {e arena} of reusable slots (struct-of-arrays:
    times, tie-break sequence numbers, payloads) recycled through a free
    list, so steady-state scheduling allocates nothing. Pending events
    are indexed by a three-tier structure keyed by the event's {e tick}
    (its timestamp quantised to 2{^-14} s):

    - a {b near heap} — a 4-ary min-heap over [(time, seq)] holding
      every event at or before the current tick cursor, so the pop order
      is exact;
    - a {b timer wheel} — 1024 unsorted buckets covering the next
      ~62.5 ms, where the near-horizon bulk (frame serialisation, timer
      re-arms) lands in O(1);
    - an {b overflow heap} — a second [(time, seq)] min-heap for
      timestamps beyond the wheel horizon.

    When the near heap drains, the cursor advances to the next populated
    tick and that tick's events (wheel bucket and/or overflow prefix)
    are dumped into the near heap, restoring exact order. Events with
    equal timestamps therefore still pop in insertion order, regardless
    of which tier they travelled through — the determinism contract the
    simulations depend on.

    Handles are generation-tagged integers: cancellation is O(1), a
    stale handle (slot since recycled) is detected and refused, and a
    cancelled or fired event's payload slot is immediately reset to the
    queue's [dummy] so the queue never pins dead payloads. *)

type 'a t
(** Queue holding payloads of type ['a]. *)

type id
(** Handle naming a scheduled event, usable for cancellation. Handles
    are generation-tagged: once the event fires or is cancelled, the
    handle goes stale and all further operations on it return [false]. *)

val never : id
(** A handle that names no event: [cancel]/[is_pending] on it return
    [false]. The idle value for "maybe armed" fields (e.g. {!Timer}),
    avoiding an [option] allocation per arm. *)

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty queue. [dummy] is the inert payload
    written into vacated slots (popped, cancelled, or freshly grown) so
    the arena retains no reference to dead payloads; it is never
    returned by {!pop}. [capacity] (default 256) sizes the initial
    arena; it grows on demand. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val add : 'a t -> time:float -> 'a -> id
(** [add q ~time v] schedules [v] at [time] and returns its handle. *)

val add_aux : 'a t -> time:float -> aux:int -> 'a -> id
(** Like {!add} with an auxiliary integer stored (unboxed) alongside the
    payload and handed back by {!pop_run} — room for a dispatch tag or a
    small argument without allocating a wrapper. {!add} stores [0]. *)

val add_after : 'a t -> clock:float array -> delay:float -> aux:int -> 'a -> id
(** [add_after q ~clock ~delay ~aux v] is
    [add_aux q ~time:(clock.(0) +. delay) ~aux v], with the sum computed
    inside this module: the timestamp flows from the clock cell into the
    arena's float array without materialising an intermediate boxed
    float (non-flambda builds box cross-module float returns, and the
    scheduling hot path must not allocate). *)

val cancel : 'a t -> id -> bool
(** [cancel q id] removes the event if it is still pending. Returns
    [false] when the event already fired, was already cancelled, or the
    handle is stale. Removal from the indexing tier is lazy, but the
    payload slot is cleared immediately. *)

val is_pending : 'a t -> id -> bool
(** Whether the handle names an event that has neither fired nor been
    cancelled. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest live event, if any. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest live event. Allocates the result;
    drain loops that must not allocate use {!pop_run}. *)

type run_stop =
  | Drained  (** no live events left *)
  | Deferred  (** the earliest live event lies beyond [until] *)
  | Max_events  (** the [max_events] budget was consumed *)

val pop_run :
  'a t ->
  clock:float array ->
  until:float ->
  max_events:int ->
  k:('a -> int -> unit) ->
  run_stop
(** [pop_run q ~clock ~until ~max_events ~k] pops live events in
    [(time, seq)] order while their time is [<= until], writing each
    event's timestamp into [clock.(0)] and then calling
    [k payload aux], until the queue drains, the next event lies beyond
    [until], or [max_events] events have run. The event's slot is
    recycled {e before} [k] runs, so [k] may freely add or cancel —
    including re-adding at the current time, which keeps its place in
    the tie-break order. Allocation-free. *)
