(** Priority queue of timestamped events.

    An implicit 4-ary min-heap keyed by [(time, tie-break sequence)].
    Events with equal timestamps pop in insertion order, which keeps
    simulations deterministic. Supports O(log n) insertion and removal of
    the minimum, and O(1) cancellation: the handle returned by {!add} is
    the heap entry itself, so cancelling needs no auxiliary index. *)

type 'a t
(** Queue holding payloads of type ['a]. *)

type 'a id
(** Handle naming a scheduled event, usable for cancellation. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val add : 'a t -> time:float -> 'a -> 'a id
(** [add q ~time v] schedules [v] at [time] and returns its handle. *)

val cancel : 'a t -> 'a id -> bool
(** [cancel q id] removes the event if it is still pending. Returns
    [false] when the event already fired or was already cancelled.
    Cancellation is lazy: the slot is skipped when popped. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest live event, if any. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest live event. *)
