(* SplitMix64. Reference: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014. *)

(* The 64-bit state lives in an 8-byte buffer rather than a mutable
   [int64] record field: int64 fields are boxed, so a record would
   allocate a fresh box on every draw. [Bytes.get/set_int64_le] keep the
   arithmetic unboxed end to end, making draws allocation-free on the
   native-code path. *)
type t = { state : Bytes.t }

let of_int64 s =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 s;
  { state = b }

let golden_gamma = 0x9E3779B97F4A7C15L

let[@inline] mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = of_int64 (mix64 (Int64.of_int seed))

let[@inline] bits64 t =
  let s = Int64.add (Bytes.get_int64_le t.state 0) golden_gamma in
  Bytes.set_int64_le t.state 0 s;
  mix64 s

let split t =
  let seed = bits64 t in
  of_int64 (mix64 seed)

let copy t = { state = Bytes.copy t.state }

(* Top 53 bits -> float in [0,1). *)
let[@inline] unit_float t =
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1.0p-53

let[@inline] float t x =
  assert (x > 0.);
  unit_float t *. x

let[@inline] int t n =
  assert (n > 0);
  (* Rejection-free for n << 2^62: take nonnegative 62 bits, mod n. The
     modulo bias is < n / 2^62, negligible for simulation use. *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  x mod n

let[@inline] bool t = Int64.logand (bits64 t) 1L = 1L

let[@inline] bernoulli t ~p =
  if p <= 0. then false
  else if p >= 1. then true
  else unit_float t < p

let exponential t ~mean =
  assert (mean > 0.);
  let u = 1. -. unit_float t in
  -.mean *. log u

let[@inline] geometric t ~p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 1
  else
    let u = 1. -. unit_float t in
    (* ceil of log-transform inverse CDF; always >= 1 *)
    let k = int_of_float (ceil (log u /. log (1. -. p))) in
    max 1 k

let binomial t ~n ~p =
  assert (n >= 0);
  if n = 0 || p <= 0. then 0
  else if p >= 1. then n
  else if n <= 64 then begin
    let c = ref 0 in
    for _ = 1 to n do
      if bernoulli t ~p then incr c
    done;
    !c
  end
  else begin
    (* branch, not [Float.min]: a non-inlined cross-module call would
       box the argument and result floats on every draw *)
    let q = if p <= 0.5 then p else 1. -. p in
    if float_of_int n *. q <= 30. then begin
      (* Direct CDF inversion on the rarer outcome. The normal
         approximation is catastrophically wrong in this regime: at
         n*p << 1 (a 12,000-bit frame at BER 1e-7, say) it rounds every
         draw to zero and the simulated frame-error rate collapses to 0
         instead of ~n*p. Inversion is exact, and with n*q <= 30 the
         walk terminates after a handful of pmf terms. *)
      let u = ref (unit_float t) in
      let pmf = ref (exp (float_of_int n *. log1p (-.q))) in
      let ratio = q /. (1. -. q) in
      let k = ref 0 in
      while !u >= !pmf && !k < n do
        u := !u -. !pmf;
        pmf := !pmf *. (float_of_int (n - !k) /. float_of_int (!k + 1)) *. ratio;
        incr k
      done;
      if p <= 0.5 then !k else n - !k
    end
    else begin
      (* Normal approximation with continuity correction, clamped to the
         support. Fine when the distribution is well away from the edges
         of the support (n*p and n*(1-p) both large), which the branch
         above guarantees. *)
      let mean = float_of_int n *. p in
      let sd = sqrt (float_of_int n *. p *. (1. -. p)) in
      (* Box-Muller *)
      let u1 = 1. -. unit_float t and u2 = unit_float t in
      let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
      let x = int_of_float (Float.round (mean +. (sd *. z))) in
      max 0 (min n x)
    end
  end

(* Path-based seed derivation. Each component is absorbed into the
   64-bit state byte by byte through the SplitMix64 finalizer, with a
   length prefix so ["ab"; "c"] and ["a"; "bc"] land on different
   streams. Pure Int64 arithmetic: the result is identical on every
   platform and OCaml version, which is what lets replicated experiments
   name their RNG streams structurally (root / experiment / point /
   replicate) instead of sharing one mutable generator. *)
let absorb h x = mix64 (Int64.add (Int64.logxor h x) golden_gamma)

let absorb_string h s =
  let h = ref (absorb h (Int64.of_int (String.length s))) in
  String.iter (fun c -> h := absorb !h (Int64.of_int (Char.code c))) s;
  !h

let derive_bits ~root path =
  List.fold_left absorb_string (mix64 (Int64.of_int root)) path

let derive_seed ~root path =
  Int64.to_int (derive_bits ~root path) land max_int

let derive ~root path = of_int64 (mix64 (derive_bits ~root path))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
