(** Deterministic pseudo-random number generation for simulations.

    The implementation is SplitMix64 (Steele, Lea & Flood 2014): a tiny,
    fast, well-distributed 64-bit generator whose state is a single integer.
    Every simulation component takes an explicit [Rng.t] so that runs are
    reproducible from a seed and independent streams can be split off
    without correlation. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use one stream per stochastic component (channel, arrivals, ...) so
    that changing one component's draw count does not perturb others. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val derive_seed : root:int -> string list -> int
(** [derive_seed ~root path] hashes [root] and the path components into a
    non-negative seed. Replicated experiments use it to give every
    (experiment, point, replicate) task an independent stream —
    [f root ["e6"; "ber=1e-5"; "3"]] — with no shared mutable RNG, so a
    task's draws never depend on scheduling order. The mapping is pure
    64-bit arithmetic: stable across runs, platforms and OCaml versions.
    Distinct paths give (with overwhelming probability) unrelated
    streams; a component list is length-prefixed, so [["ab"; "c"]] and
    [["a"; "bc"]] differ. *)

val derive : root:int -> string list -> t
(** [derive ~root path] is a generator seeded from the full 64-bit
    derivation of [derive_seed] (not truncated to [int]). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n-1]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x). Requires [x > 0.]. *)

val unit_float : t -> float
(** Uniform on [0, 1). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. [p] is clamped to
    [0, 1]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean. Requires
    [mean > 0.]. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] is the number of Bernoulli(p) trials up to and
    including the first success (support 1, 2, ...). Requires
    [0. < p <= 1.]. *)

val binomial : t -> n:int -> p:float -> int
(** Number of successes in [n] Bernoulli(p) trials. Exact (O(n)) for small
    [n]; for large [n], exact CDF inversion when [n * min p (1-p)] is small
    (the low-BER regime where a normal approximation would round every
    draw to 0) and a normal approximation otherwise. Suitable for sampling
    bit-error counts in long frames at any BER. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
