type t = {
  engine : Engine.t;
  mutable duration : float;
  on_expire : unit -> unit;
  mutable armed : Engine.event_id;
  mutable expires_at : float;
  mutable fire : unit -> unit;
      (* allocated once at [create]; [start] re-arms it without closing
         over anything per call *)
}

let create engine ~duration ~on_expire =
  assert (duration > 0.);
  let t =
    {
      engine;
      duration;
      on_expire;
      armed = Engine.never;
      expires_at = 0.;
      fire = ignore;
    }
  in
  t.fire <-
    (fun () ->
      t.armed <- Engine.never;
      t.on_expire ());
  t

let stop t =
  (* cancel on a stale or [never] handle is a cheap no-op *)
  ignore (Engine.cancel t.engine t.armed : bool);
  t.armed <- Engine.never

let start t =
  stop t;
  t.expires_at <- Engine.now t.engine +. t.duration;
  t.armed <- Engine.schedule t.engine ~delay:t.duration t.fire

let reset = start

let is_running t = Engine.is_scheduled t.engine t.armed

let set_duration t d =
  assert (d > 0.);
  t.duration <- d

let remaining t =
  if Engine.is_scheduled t.engine t.armed then
    Some (Float.max 0. (t.expires_at -. Engine.now t.engine))
  else None
