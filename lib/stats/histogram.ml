type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: lo must be < hi";
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0;
    underflow = 0;
    overflow = 0;
    total = 0;
  }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    let i = Stdlib.min i (Array.length t.counts - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total

let bins t = Array.length t.counts

let underflow t = t.underflow

let overflow t = t.overflow

let bin_count t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.bin_count: index out of range";
  t.counts.(i)

let bin_bounds t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.bin_bounds: index out of range";
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let percentile t p =
  if t.total = 0 then nan
  else begin
    let p = Float.max 0. (Float.min 100. p) in
    let target = p /. 100. *. float_of_int t.total in
    let rec scan i acc =
      if i >= Array.length t.counts then t.hi
      else begin
        let acc' = acc +. float_of_int t.counts.(i) in
        if acc' >= target then begin
          (* interpolate within the bin *)
          let need = target -. acc in
          let frac =
            if t.counts.(i) = 0 then 0.
            else need /. float_of_int t.counts.(i)
          in
          t.lo +. ((float_of_int i +. frac) *. t.width)
        end
        else scan (i + 1) acc'
      end
    in
    let under = float_of_int t.underflow in
    if under >= target then t.lo else scan 0 under
  end

let mean_estimate t =
  if t.total = 0 then nan
  else begin
    let acc = ref 0. in
    Array.iteri
      (fun i c ->
        let mid = t.lo +. ((float_of_int i +. 0.5) *. t.width) in
        acc := !acc +. (mid *. float_of_int c))
      t.counts;
    acc := !acc +. (t.lo *. float_of_int t.underflow);
    acc := !acc +. (t.hi *. float_of_int t.overflow);
    !acc /. float_of_int t.total
  end

let pp ppf t =
  Format.fprintf ppf "histogram [%g,%g) n=%d under=%d over=%d@." t.lo t.hi
    t.total t.underflow t.overflow;
  let maxc = Array.fold_left Stdlib.max 1 t.counts in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo, hi = bin_bounds t i in
        let bar = String.make (c * 40 / maxc) '#' in
        Format.fprintf ppf "  [%10.4g,%10.4g) %8d %s@." lo hi c bar
      end)
    t.counts
