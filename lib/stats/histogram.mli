(** Fixed-bin histogram with percentile queries.

    Linear bins over [lo, hi); observations outside the range land in
    under/overflow counters so nothing is silently dropped. Suitable for
    latency and queue-length distributions where the range is known a
    priori. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Requires [lo < hi] and [bins > 0]. *)

val add : t -> float -> unit

val count : t -> int
(** Total observations, including under/overflow. *)

val bins : t -> int
(** Number of regular bins (the [bins] passed to {!create}). *)

val underflow : t -> int

val overflow : t -> int

val bin_count : t -> int -> int
(** Count in the [i]-th bin; raises [Invalid_argument] out of range. *)

val bin_bounds : t -> int -> float * float
(** [(lo, hi)] of the [i]-th bin. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0, 100]: linear-interpolated estimate
    from bin midpoints. Underflow maps to [lo], overflow to [hi].
    [nan] when empty. *)

val mean_estimate : t -> float
(** Mean estimated from bin midpoints. *)

val pp : Format.formatter -> t -> unit
(** ASCII sparkline-style dump, one row per nonempty bin. *)
