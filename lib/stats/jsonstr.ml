let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
