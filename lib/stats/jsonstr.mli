(** JSON text fragments for the stats emitters.

    [stats] sits below the JSON-value library in [bench_report], so
    {!Table.to_json_string} and {!Online.to_json_string} print JSON text
    directly; these are the two shared pieces. *)

val escape : string -> string
(** The string as a quoted JSON string literal. *)

val float_repr : float -> string
(** Shortest decimal that round-trips the float; non-finite values render
    as [null] (JSON has no representation for them). *)
