type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; sum = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.sum <- t.sum +. x

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let fa = float_of_int a.n and fb = float_of_int b.n in
    let fn = float_of_int n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. fb /. fn) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. fn) in
    {
      n;
      mean;
      m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      sum = a.sum +. b.sum;
    }
  end

let count t = t.n

let mean t = if t.n = 0 then nan else t.mean

let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = t.min

let max t = t.max

let sum t = t.sum

(* Two-sided 97.5% Student-t quantiles by degrees of freedom. With the
   handful of replicates a matrix run typically has (3-10), the normal
   z=1.96 understates the interval badly: at df=2 the true critical
   value is 4.30, so a flat 1.96 reported intervals less than half as
   wide as they should be. *)
let t_crit_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t_crit df =
  if df < 1 then nan
  else if df <= 30 then t_crit_table.(df - 1)
  else if df <= 40 then 2.021
  else if df <= 60 then 2.000
  else if df <= 120 then 1.980
  else 1.96

let ci95_halfwidth t =
  if t.n < 2 then 0.
  else t_crit (t.n - 1) *. stddev t /. sqrt (float_of_int t.n)

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.6g±%.2g min=%.6g max=%.6g" t.n t.mean
      (ci95_halfwidth t) t.min t.max

let to_json_string t =
  Printf.sprintf
    "{\"count\":%d,\"mean\":%s,\"stddev\":%s,\"min\":%s,\"max\":%s,\"sum\":%s}"
    t.n
    (Jsonstr.float_repr (mean t))
    (Jsonstr.float_repr (stddev t))
    (Jsonstr.float_repr t.min)
    (Jsonstr.float_repr t.max)
    (Jsonstr.float_repr t.sum)
