type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; sum = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.sum <- t.sum +. x

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let fa = float_of_int a.n and fb = float_of_int b.n in
    let fn = float_of_int n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. fb /. fn) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. fn) in
    {
      n;
      mean;
      m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      sum = a.sum +. b.sum;
    }
  end

let count t = t.n

let mean t = if t.n = 0 then nan else t.mean

let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = t.min

let max t = t.max

let sum t = t.sum

let ci95_halfwidth t =
  if t.n < 2 then 0. else 1.96 *. stddev t /. sqrt (float_of_int t.n)

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.6g±%.2g min=%.6g max=%.6g" t.n t.mean
      (ci95_halfwidth t) t.min t.max

let to_json_string t =
  Printf.sprintf
    "{\"count\":%d,\"mean\":%s,\"stddev\":%s,\"min\":%s,\"max\":%s,\"sum\":%s}"
    t.n
    (Jsonstr.float_repr (mean t))
    (Jsonstr.float_repr (stddev t))
    (Jsonstr.float_repr t.min)
    (Jsonstr.float_repr t.max)
    (Jsonstr.float_repr t.sum)
