(** Streaming univariate statistics.

    Welford's online algorithm: numerically stable single-pass mean and
    variance, plus min/max and count. Use one accumulator per measured
    quantity (holding time, delivery delay, ...). *)

type t

val create : unit -> t

val add : t -> float -> unit

val merge : t -> t -> t
(** Combine two accumulators as if all observations had gone to one
    (Chan et al. parallel update). Inputs are not modified. *)

val count : t -> int

val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float

val min : t -> float
(** [infinity] when empty. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val sum : t -> float

val ci95_halfwidth : t -> float
(** Half-width of a Student-t 95% confidence interval for the mean
    ([t_{0.975, n-1} * stddev / sqrt n]); [0.] with fewer than two
    samples. The critical value is exact for [n - 1 <= 30] and tapers
    stepwise to the normal 1.96 for large [n], so small replicate counts
    no longer get normal-width (over-confident) intervals. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering: count, mean ± ci, min, max. *)

val to_json_string : t -> string
(** The accumulator as a JSON object with [count], [mean], [stddev],
    [min], [max] and [sum] fields; non-finite values (empty accumulator)
    render as [null]. *)
