type t = { header : string list; mutable rev_rows : string list list }

let create ~header = { header; rev_rows = [] }

let add_row t row = t.rev_rows <- row :: t.rev_rows

let add_float_row t label values =
  add_row t (label :: List.map (Printf.sprintf "%.6g") values)

let pp ppf t =
  let rows = List.rev t.rev_rows in
  let ncols =
    List.fold_left
      (fun acc r -> Stdlib.max acc (List.length r))
      (List.length t.header)
      rows
  in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      row
  in
  measure t.header;
  List.iter measure rows;
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let render row =
    String.concat "  " (List.init ncols (fun i -> pad i (cell row i)))
  in
  Format.fprintf ppf "%s@." (render t.header);
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  Format.fprintf ppf "%s@." rule;
  List.iter (fun r -> Format.fprintf ppf "%s@." (render r)) rows

let to_string t = Format.asprintf "%a" pp t

let to_json_string t =
  let buf = Buffer.create 256 in
  let row_to_json row =
    "[" ^ String.concat "," (List.map Jsonstr.escape row) ^ "]"
  in
  Buffer.add_string buf "{\"header\":";
  Buffer.add_string buf (row_to_json t.header);
  Buffer.add_string buf ",\"rows\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (row_to_json row))
    (List.rev t.rev_rows);
  Buffer.add_string buf "]}";
  Buffer.contents buf
