(** Column-aligned text tables for experiment reports.

    A tiny formatter: give it a header and string rows, it pads columns to
    the widest cell and prints with a separator rule. Keeps bench output
    copy-pasteable into EXPERIMENTS.md as-is. *)

type t

val create : header:string list -> t

val add_row : t -> string list -> unit
(** Rows may be shorter or longer than the header; missing cells render
    empty, extra cells extend the table. *)

val add_float_row : t -> string -> float list -> unit
(** Convenience: first cell is a label, remaining cells are formatted with
    [%.6g]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val to_json_string : t -> string
(** The table as a JSON object [{"header": [...], "rows": [[...], ...]}],
    for machine-readable experiment output. *)
