type t = { recorder : Recorder.t; buf : Buffer.t; base : string }

let start ?config ~proto ~seed ~fingerprint () =
  let config = match config with Some c -> Some c | None -> Config.get () in
  match config with
  | None -> None
  | Some c ->
      let base =
        Filename.concat c.Config.dir (Config.basename ~proto ~seed ~fingerprint)
      in
      let recorder =
        Recorder.create ~capacity:c.Config.capacity
          ~name:(Filename.basename base) ()
      in
      let buf = Buffer.create 65536 in
      Recorder.set_sink recorder (fun e ->
          Buffer.add_string buf (Event.to_line e);
          Buffer.add_char buf '\n');
      Some { recorder; buf; base }

let recorder t = t.recorder

let base t = t.base

let finish t =
  Config.write_atomic ~path:(t.base ^ ".jsonl") (Buffer.contents t.buf);
  Config.write_atomic
    ~path:(t.base ^ ".metrics.json")
    (Bench_report.Json.to_string ~indent:2
       (Metrics.to_json (Recorder.metrics t.recorder))
    ^ "\n");
  match Recorder.flight_jsonl t.recorder with
  | Some dump -> Config.write_atomic ~path:(t.base ^ ".flight.jsonl") dump
  | None -> ()
