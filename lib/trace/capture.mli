(** Capture one run's trace to content-addressed files.

    Glue between a {!Recorder} and the process-wide {!Config}: [start]
    returns [None] when no capture directory is configured, otherwise a
    recorder whose full event stream is buffered; [finish] publishes

    - [<base>.jsonl] — the full event stream,
    - [<base>.metrics.json] — the {!Metrics} summary,
    - [<base>.flight.jsonl] — the flight dump, when a violation froze one,

    with [<base>] from {!Config.basename}, written atomically so
    concurrent workers executing identical tasks can only ever publish
    identical complete files. *)

type t

val start :
  ?config:Config.t ->
  proto:string ->
  seed:int ->
  fingerprint:string ->
  unit ->
  t option
(** [config] defaults to {!Config.get}; [None] when that is unset. *)

val recorder : t -> Recorder.t

val base : t -> string
(** Full path prefix the files will be written under. *)

val finish : t -> unit
