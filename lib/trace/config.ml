type t = { dir : string; capacity : int }

let default_capacity = 512

let current = ref None

let set c = current := c

let get () = !current

let basename ~proto ~seed ~fingerprint =
  let digest = Digest.to_hex (Digest.string fingerprint) in
  Printf.sprintf "trace-%s-seed%d-%s" proto seed (String.sub digest 0 12)

let tmp_counter = Atomic.make 0

let write_atomic ~path content =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let tmp =
    Printf.sprintf "%s.tmp-%d" path (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path
