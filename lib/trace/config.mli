(** Process-wide trace capture configuration.

    The matrix runner's worker pool calls each point's [run] closure
    with nothing but a seed, and its determinism contract forbids
    shared mutable state between tasks. Trace capture therefore rides
    along as a {e read-only} global: the CLI sets it once before
    {!Runner.run} and every scenario consults it. File names are
    content-addressed from the run's own configuration, so two workers
    that somehow execute identical tasks write identical bytes to the
    identical path — order cannot matter.

    {!set} must not be called while runs are in flight. *)

type t = {
  dir : string;  (** directory receiving the [.jsonl] files; created lazily *)
  capacity : int;  (** flight-recorder ring size *)
}

val default_capacity : int

val set : t option -> unit

val get : unit -> t option

val basename : proto:string -> seed:int -> fingerprint:string -> string
(** [trace-<proto>-seed<seed>-<digest12>] — no extension; the scenario
    appends [.jsonl], [.metrics.json] or [.flight.jsonl]. [fingerprint]
    is any string that pins down the run (parameters, fault script
    descriptions, flags); it is digested, never written out. *)

val write_atomic : path:string -> string -> unit
(** Write via a unique temp file in the target directory plus [rename],
    so concurrent writers of the same path can only ever publish a
    complete file. Creates the directory (one level) if missing. *)
