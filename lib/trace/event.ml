module Json = Bench_report.Json

type kind =
  | Probe of Dlc.Probe.event
  | Fault of { link : string; action : string; frame : string }
  | Violation of { invariant : string; detail : string }

type t = { i : int; time : float; kind : kind }

let name e =
  match e.kind with
  | Probe ev -> Dlc.Probe.event_name ev
  | Fault _ -> "fault"
  | Violation _ -> "violation"

let payload_label p = if String.length p <= 16 then p else String.sub p 0 16

let payload_fields payload =
  [
    ("payload", Json.String (payload_label payload));
    ("len", Json.Int (String.length payload));
  ]

let kind_fields = function
  | Probe (Dlc.Probe.Offered { payload }) -> payload_fields payload
  | Probe (Dlc.Probe.Tx { seq; payload; retx = _ })
  | Probe (Dlc.Probe.Released { seq; payload })
  | Probe (Dlc.Probe.Requeued { seq; payload })
  | Probe (Dlc.Probe.Delivered { seq; payload }) ->
      ("seq", Json.Int seq) :: payload_fields payload
  | Probe Dlc.Probe.Recovery_started
  | Probe Dlc.Probe.Recovery_completed
  | Probe Dlc.Probe.Failure_declared
  | Probe (Dlc.Probe.Link_transition _) -> []
  | Probe (Dlc.Probe.Cp_emitted { cp_seq; next_expected; enforced; stop_go; naks })
    ->
      [
        ("cp_seq", Json.Int cp_seq);
        ("next_expected", Json.Int next_expected);
        ("enforced", Json.Bool enforced);
        ("stop_go", Json.Bool stop_go);
        ("naks", Json.List (List.map (fun n -> Json.Int n) naks));
      ]
  | Probe (Dlc.Probe.State_corrupted { klass; detail }) ->
      [ ("class", Json.String klass); ("detail", Json.String detail) ]
  | Probe (Dlc.Probe.Converged { after; anomalies }) ->
      [ ("after", Json.Float after); ("anomalies", Json.Int anomalies) ]
  | Probe (Dlc.Probe.Cp_quarantined { cp_seq; reason; distrust }) ->
      [
        ("cp_seq", Json.Int cp_seq);
        ("reason", Json.String reason);
        ("distrust", Json.Int distrust);
      ]
  | Probe (Dlc.Probe.Resync_forced { attempt }) ->
      [ ("attempt", Json.Int attempt) ]
  | Fault { link; action; frame } ->
      [
        ("link", Json.String link);
        ("action", Json.String action);
        ("frame", Json.String frame);
      ]
  | Violation { invariant; detail } ->
      [
        ("invariant", Json.String invariant);
        ("detail", Json.String detail);
      ]

let to_json e =
  Json.Obj
    (("i", Json.Int e.i)
    :: ("t", Json.Float e.time)
    :: ("ev", Json.String (name e))
    :: kind_fields e.kind)

let to_line e = Json.to_string ~indent:0 (to_json e)

(* --- decoding ----------------------------------------------------------- *)

let ( let* ) r f = Result.bind r f

let field j key conv =
  match Json.member key j with
  | None -> Error (Printf.sprintf "missing field %S" key)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" key))

let int_field j key = field j key Json.to_int

let str_field j key = field j key Json.to_str

let bool_field j key =
  field j key (function Json.Bool b -> Some b | _ -> None)

let float_field j key = field j key Json.to_float

let seq_payload j mk =
  let* seq = int_field j "seq" in
  let* payload = str_field j "payload" in
  let* _len = int_field j "len" in
  Ok (mk ~seq ~payload)

let kind_of_json j = function
  | "offered" ->
      let* payload = str_field j "payload" in
      let* _len = int_field j "len" in
      Ok (Probe (Dlc.Probe.Offered { payload }))
  | "tx" | "retx" ->
      let retx = Json.member "ev" j = Some (Json.String "retx") in
      seq_payload j (fun ~seq ~payload ->
          Probe (Dlc.Probe.Tx { seq; payload; retx }))
  | "released" ->
      seq_payload j (fun ~seq ~payload ->
          Probe (Dlc.Probe.Released { seq; payload }))
  | "requeued" ->
      seq_payload j (fun ~seq ~payload ->
          Probe (Dlc.Probe.Requeued { seq; payload }))
  | "delivered" ->
      seq_payload j (fun ~seq ~payload ->
          Probe (Dlc.Probe.Delivered { seq; payload }))
  | "recovery-started" -> Ok (Probe Dlc.Probe.Recovery_started)
  | "recovery-completed" -> Ok (Probe Dlc.Probe.Recovery_completed)
  | "failure-declared" -> Ok (Probe Dlc.Probe.Failure_declared)
  | "link-up" -> Ok (Probe (Dlc.Probe.Link_transition { state = Link_up }))
  | "link-retargeting" ->
      Ok (Probe (Dlc.Probe.Link_transition { state = Link_retargeting }))
  | "link-down" -> Ok (Probe (Dlc.Probe.Link_transition { state = Link_down }))
  | "link-failed" ->
      Ok (Probe (Dlc.Probe.Link_transition { state = Link_failed }))
  | "cp" | "cp-nak" ->
      let* cp_seq = int_field j "cp_seq" in
      let* next_expected = int_field j "next_expected" in
      let* enforced = bool_field j "enforced" in
      let* stop_go = bool_field j "stop_go" in
      let* naks =
        field j "naks" (fun v ->
            match Json.to_list v with
            | None -> None
            | Some items ->
                let rec ints acc = function
                  | [] -> Some (List.rev acc)
                  | Json.Int n :: rest -> ints (n :: acc) rest
                  | _ -> None
                in
                ints [] items)
      in
      Ok
        (Probe
           (Dlc.Probe.Cp_emitted
              { cp_seq; next_expected; enforced; stop_go; naks }))
  | "state-corrupted" ->
      let* klass = str_field j "class" in
      let* detail = str_field j "detail" in
      Ok (Probe (Dlc.Probe.State_corrupted { klass; detail }))
  | "converged" ->
      let* after = float_field j "after" in
      let* anomalies = int_field j "anomalies" in
      Ok (Probe (Dlc.Probe.Converged { after; anomalies }))
  | "cp-quarantined" ->
      let* cp_seq = int_field j "cp_seq" in
      let* reason = str_field j "reason" in
      let* distrust = int_field j "distrust" in
      Ok (Probe (Dlc.Probe.Cp_quarantined { cp_seq; reason; distrust }))
  | "resync-forced" ->
      let* attempt = int_field j "attempt" in
      Ok (Probe (Dlc.Probe.Resync_forced { attempt }))
  | "fault" ->
      let* link = str_field j "link" in
      let* action = str_field j "action" in
      let* frame = str_field j "frame" in
      Ok (Fault { link; action; frame })
  | "violation" ->
      let* invariant = str_field j "invariant" in
      let* detail = str_field j "detail" in
      Ok (Violation { invariant; detail })
  | other -> Error (Printf.sprintf "unknown event tag %S" other)

let of_json j =
  let* i = int_field j "i" in
  let* time = float_field j "t" in
  let* ev = str_field j "ev" in
  let* kind = kind_of_json j ev in
  if i < 0 then Error "negative event index"
  else if not (Float.is_finite time) then Error "non-finite timestamp"
  else
    let e = { i; time; kind } in
    (* the tag must agree with the payload it claims to carry *)
    if name e <> ev then
      Error (Printf.sprintf "tag %S does not match fields (expected %S)" ev (name e))
    else Ok e

let of_line line =
  match Json.of_string line with
  | Error e -> Error e
  | Ok j -> of_json j
