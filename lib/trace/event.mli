(** One timestamped trace record and its canonical JSONL form.

    A trace is a stream of these, one JSON object per line, byte-stable
    for a given (seed, configuration, fault script) whatever the worker
    count: every float goes through {!Stats.Jsonstr.float_repr} and the
    field order is fixed. Three sources feed the stream: the semantic
    {!Dlc.Probe} bus, {!Channel.Fault} hit observers, and
    {!Oracle.set_on_violation}. *)

type kind =
  | Probe of Dlc.Probe.event
  | Fault of { link : string; action : string; frame : string }
      (** a fault script affected a frame; [link] is ["forward"] or
          ["reverse"], [frame] a stable description of the victim *)
  | Violation of { invariant : string; detail : string }

type t = {
  i : int;  (** monotone index since recorder creation — survives ring
                wrap, so a flight dump shows exactly what was cut *)
  time : float;  (** simulated seconds *)
  kind : kind;
}

val name : t -> string
(** Stable event tag: {!Dlc.Probe.event_name} for probe events,
    ["fault"] / ["violation"] otherwise. *)

val payload_label : string -> string
(** First 16 bytes of a payload — enough to identify a frame built by
    {!Workload.Arrivals.default_payload} without dumping the kilobyte. *)

val to_json : t -> Bench_report.Json.t

val to_line : t -> string
(** Single-line JSON, no trailing newline. *)

val of_json : Bench_report.Json.t -> (t, string) result
(** Inverse of {!to_json} up to payload truncation (payloads come back
    as their labels). This is the schema check: every required field of
    the event's kind must be present and well-typed. *)

val of_line : string -> (t, string) result
