type t = {
  buf : Buffer.t;
  data_only : bool;
}

let fate_of_status = function
  | Channel.Link.Rx_ok -> Channel.Model.Clean
  | Channel.Link.Rx_payload_corrupt -> Channel.Model.Corrupt { header = false }
  | Channel.Link.Rx_header_corrupt -> Channel.Model.Corrupt { header = true }

let create ?(data_only = true) () = { buf = Buffer.create 1024; data_only }

let wants t frame = (not t.data_only) || not (Frame.Wire.is_control frame)

let observe t ev =
  match ev with
  | Channel.Link.Tap_tx _ -> ()
  | Channel.Link.Tap_rx rx ->
      if wants t rx.Channel.Link.frame then
        Buffer.add_char t.buf
          (Channel.Trace_model.fate_token (fate_of_status rx.Channel.Link.status))
  | Channel.Link.Tap_lost frame ->
      if wants t frame then
        Buffer.add_char t.buf (Channel.Trace_model.fate_token Channel.Model.Lost)

let attach t link = Channel.Link.add_tap link (observe t)

let length t = Buffer.length t.buf

let fates t =
  let s = Buffer.contents t.buf in
  Array.init (String.length s) (fun i ->
      match Channel.Trace_model.fate_of_token s.[i] with
      | Some f -> f
      | None -> assert false)

let save ?comment t path = Channel.Trace_model.save ?comment path (fates t)
