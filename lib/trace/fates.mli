(** Capture live frame fates from a link into a replayable channel
    trace.

    A fates recorder taps a {!Channel.Link} and notes each frame's
    observed fate in arrival order — [Tap_rx] status maps to
    clean/payload-corrupt/header-corrupt, [Tap_lost] to lost — giving a
    {!Channel.Trace_model} trace of what the (synthetic or scripted)
    channel actually did to a session. Saved traces feed the replay
    backend and {!Channel.Calibrate}, closing the record → replay →
    calibrate loop on live simulations.

    By default only data frames are captured ([data_only = true]): the
    replayed trace then pairs with a clean control channel, matching the
    paper's strong-FEC control-frame assumption. *)

type t

val create : ?data_only:bool -> unit -> t

val attach : t -> Channel.Link.t -> unit
(** Adds a tap ({!Channel.Link.add_tap}); existing taps keep firing. *)

val observe : t -> Channel.Link.tap_event -> unit
(** The tap itself, for callers managing their own tap fan-out. *)

val length : t -> int
(** Frames captured so far. *)

val fates : t -> Channel.Trace_model.data
(** Snapshot of the captured fate sequence. *)

val save : ?comment:string -> t -> string -> unit
(** Write the captured trace in the v1 trace-file format. *)

val fate_of_status : Channel.Link.status -> Channel.Model.fate
