module Json = Bench_report.Json

type t = {
  mutable events : int;
  counts : (string, int) Hashtbl.t;
  holding : Stats.Histogram.t;
  nak_latency : Stats.Histogram.t;
  cp_occupancy : Stats.Histogram.t;
  last_tx : (int, float) Hashtbl.t;  (* wire seq -> last Tx time *)
  first_nak : (int, float) Hashtbl.t;  (* wire seq -> first advert time *)
}

(* Time histograms: 1 ms bins to 0.5 s. The paper's link (4,000 km,
   300 Mbit/s) has a 27 ms RTT and resolving periods of tens of ms, so
   the range covers every sane configuration; pathological holds land in
   the overflow counter rather than vanishing. *)
let create () =
  {
    events = 0;
    counts = Hashtbl.create 16;
    holding = Stats.Histogram.create ~lo:0. ~hi:0.5 ~bins:500;
    nak_latency = Stats.Histogram.create ~lo:0. ~hi:0.5 ~bins:500;
    cp_occupancy = Stats.Histogram.create ~lo:0. ~hi:64. ~bins:64;
    last_tx = Hashtbl.create 1024;
    first_nak = Hashtbl.create 256;
  }

let bump t name =
  Hashtbl.replace t.counts name
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts name))

let observe t (e : Event.t) =
  t.events <- t.events + 1;
  bump t (Event.name e);
  match e.Event.kind with
  | Event.Probe (Dlc.Probe.Tx { seq; _ }) ->
      Hashtbl.replace t.last_tx seq e.Event.time
  | Event.Probe (Dlc.Probe.Released { seq; _ }) ->
      (match Hashtbl.find_opt t.last_tx seq with
      | Some t0 -> Stats.Histogram.add t.holding (e.Event.time -. t0)
      | None -> ());
      Hashtbl.remove t.last_tx seq;
      Hashtbl.remove t.first_nak seq
  | Event.Probe (Dlc.Probe.Requeued { seq; _ }) ->
      (match Hashtbl.find_opt t.first_nak seq with
      | Some t0 -> Stats.Histogram.add t.nak_latency (e.Event.time -. t0)
      | None -> ());
      Hashtbl.remove t.first_nak seq;
      Hashtbl.remove t.last_tx seq
  | Event.Probe (Dlc.Probe.Cp_emitted { naks; _ }) ->
      Stats.Histogram.add t.cp_occupancy (float_of_int (List.length naks));
      List.iter
        (fun seq ->
          if not (Hashtbl.mem t.first_nak seq) then
            Hashtbl.replace t.first_nak seq e.Event.time)
        naks
  | _ -> ()

let events t = t.events

let count t name = Option.value ~default:0 (Hashtbl.find_opt t.counts name)

let holding t = t.holding

let nak_latency t = t.nak_latency

let cp_occupancy t = t.cp_occupancy

let sorted_counts t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hist_fields name h =
  let f = float_of_int in
  [
    (name ^ "_count", f (Stats.Histogram.count h));
    (name ^ "_mean", Stats.Histogram.mean_estimate h);
    (name ^ "_p50", Stats.Histogram.percentile h 50.);
    (name ^ "_p95", Stats.Histogram.percentile h 95.);
    (name ^ "_p99", Stats.Histogram.percentile h 99.);
    (name ^ "_overflow", f (Stats.Histogram.overflow h));
  ]

let to_fields t =
  (("events", float_of_int t.events)
  :: List.map (fun (k, v) -> ("count_" ^ k, float_of_int v)) (sorted_counts t))
  @ hist_fields "holding" t.holding
  @ hist_fields "nak_latency" t.nak_latency
  @ hist_fields "cp_occupancy" t.cp_occupancy

let hist_bins h =
  let rec go i acc =
    if i < 0 then acc
    else
      let n = Stats.Histogram.bin_count h i in
      if n = 0 then go (i - 1) acc
      else
        let lo, hi = Stats.Histogram.bin_bounds h i in
        go (i - 1)
          (Json.Obj
             [ ("lo", Json.Float lo); ("hi", Json.Float hi); ("n", Json.Int n) ]
          :: acc)
  in
  Json.List (go (Stats.Histogram.bins h - 1) [])

let to_json t =
  Json.Obj
    (List.map (fun (k, v) -> (k, Json.Float v)) (to_fields t)
    @ [
        ("holding_bins", hist_bins t.holding);
        ("nak_latency_bins", hist_bins t.nak_latency);
        ("cp_occupancy_bins", hist_bins t.cp_occupancy);
      ])
