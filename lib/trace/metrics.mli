(** Per-run counters and timing distributions derived from the trace
    stream.

    Everything here is computed incrementally from {!Event.t} values, so
    the same numbers come out whether the metrics were accumulated live
    (recorder attached to a running session) or replayed from a JSONL
    file ([trace summary]). Distributions use {!Stats.Histogram}:

    - {b holding time}: release instant minus the last transmission of
      the released wire number — the sending-buffer occupancy the paper
      bounds with the resolving period;
    - {b NAK latency}: requeue instant minus the first checkpoint that
      advertised the wire number — how long a NAK takes to turn into a
      retransmission decision;
    - {b checkpoint occupancy}: NAK count carried per emitted
      checkpoint / status report / supervisory frame. *)

type t

val create : unit -> t

val observe : t -> Event.t -> unit

val events : t -> int
(** Total events observed. *)

val count : t -> string -> int
(** Occurrences of one event tag ({!Event.name}); 0 when absent. *)

val holding : t -> Stats.Histogram.t

val nak_latency : t -> Stats.Histogram.t

val cp_occupancy : t -> Stats.Histogram.t

val to_fields : t -> (string * float) list
(** Flat deterministic summary (sorted counter names, histogram count /
    mean / p50 / p95 / p99 / overflow) for report pipelines. *)

val to_json : t -> Bench_report.Json.t
(** {!to_fields} plus the nonempty bins of each histogram. *)
