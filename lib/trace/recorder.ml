type t = {
  name : string;
  capacity : int;
  ring : Event.t option array;
  mutable next : int;  (* monotone event index *)
  mutable sink : (Event.t -> unit) option;
  mutable flight : Event.t list option;
  mutable violations : int;
  metrics : Metrics.t;
}

let create ?(capacity = 512) ~name () =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity must be positive";
  {
    name;
    capacity;
    ring = Array.make capacity None;
    next = 0;
    sink = None;
    flight = None;
    violations = 0;
    metrics = Metrics.create ();
  }

let name t = t.name

let capacity t = t.capacity

let set_sink t f = t.sink <- Some f

let ring_events t =
  (* oldest slot is [next mod capacity] once the ring has wrapped *)
  let n = min t.next t.capacity in
  List.init n (fun k ->
      let i = t.next - n + k in
      match t.ring.(i mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let record t ~now kind =
  let e = { Event.i = t.next; time = now; kind } in
  t.ring.(t.next mod t.capacity) <- Some e;
  t.next <- t.next + 1;
  Metrics.observe t.metrics e;
  (match kind with
  | Event.Violation _ ->
      t.violations <- t.violations + 1;
      if t.flight = None then t.flight <- Some (ring_events t)
  | _ -> ());
  match t.sink with None -> () | Some f -> f e

let attach_probe t probe =
  Dlc.Probe.subscribe probe (fun ~now ev -> record t ~now (Event.Probe ev))

let attach_fault t ~link fault =
  Channel.Fault.set_observer fault (fun ~now action frame ->
      record t ~now
        (Event.Fault
           {
             link;
             action = Channel.Fault.action_name action;
             frame = Format.asprintf "%a" Frame.Wire.pp frame;
           }))

let attach_oracle t oracle =
  Oracle.set_on_violation oracle (fun v ->
      (* finalize-time violations carry no simulated instant (nan); -1
         marks them while keeping every trace timestamp JSON-finite *)
      let now = if Float.is_finite v.Oracle.time then v.Oracle.time else -1. in
      record t ~now
        (Event.Violation
           { invariant = v.Oracle.invariant; detail = v.Oracle.detail }))

let events_recorded t = t.next

let flight t = t.flight

let flight_jsonl t =
  Option.map
    (fun events ->
      let b = Buffer.create 4096 in
      List.iter
        (fun e ->
          Buffer.add_string b (Event.to_line e);
          Buffer.add_char b '\n')
        events;
      Buffer.contents b)
    t.flight

let violations t = t.violations

let metrics t = t.metrics
