(** Flight recorder: bounded ring buffer of trace events per session.

    A recorder subscribes to a session's {!Dlc.Probe} bus, to the fault
    scripts on its links and to its {!Oracle}, keeps the last [capacity]
    events in a ring, and accumulates {!Metrics} over the whole stream.
    When the oracle reports its {e first} violation the ring is frozen
    into a {e flight dump} — the violation record itself is appended
    first, so the dump's final line names the invariant that broke and
    the lines before it show what the protocol was doing on the way in.

    An optional sink sees every event as it is recorded, for full-stream
    JSONL capture; the ring exists so that violation forensics stay
    cheap even when no full trace was requested. *)

type t

val create : ?capacity:int -> name:string -> unit -> t
(** [capacity] is the ring size (default 512, must be positive). *)

val name : t -> string

val capacity : t -> int

val set_sink : t -> (Event.t -> unit) -> unit
(** Called synchronously for every recorded event, after it enters the
    ring. One sink; later calls replace. *)

val record : t -> now:float -> Event.kind -> unit
(** Low-level entry point; the [attach_*] functions call this. *)

val attach_probe : t -> Dlc.Probe.t -> unit
(** Record every semantic event. Subscribe the recorder {e before}
    attaching an oracle to the same probe so that an event and the
    violation it triggers land in causal order. *)

val attach_fault : t -> link:string -> Channel.Fault.t -> unit
(** Record this script's hits, tagged with [link] (["forward"] /
    ["reverse"]). Uses {!Channel.Fault.set_observer}. *)

val attach_oracle : t -> Oracle.t -> unit
(** Record every violation and freeze the flight dump at the first one.
    Uses {!Oracle.set_on_violation}. *)

val events_recorded : t -> int
(** Total events since creation (not bounded by the ring). *)

val ring_events : t -> Event.t list
(** Current ring contents, chronological. *)

val flight : t -> Event.t list option
(** The frozen snapshot: ring contents at the instant of the first
    violation, ending with that violation's record. [None] while no
    violation has been seen. *)

val flight_jsonl : t -> string option
(** {!flight} as newline-terminated JSONL. *)

val violations : t -> int

val metrics : t -> Metrics.t
