let validate_line = Event.of_line

let validate content =
  let lines = String.split_on_char '\n' content in
  let rec go lineno last_i count = function
    | [] -> Ok count
    | "" :: rest when List.for_all (String.equal "") rest ->
        (* trailing newline(s) *)
        Ok count
    | line :: rest -> (
        match validate_line line with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok ev ->
            if ev.Event.i <= last_i then
              Error
                (Printf.sprintf
                   "line %d: event index %d not strictly increasing (previous \
                    %d)"
                   lineno ev.Event.i last_i)
            else go (lineno + 1) ev.Event.i (count + 1) rest)
  in
  go 1 (-1) 0 lines

let validate_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | content -> validate content
  | exception Sys_error e -> Error e
