(** JSONL trace validation.

    A valid trace is a sequence of newline-separated JSON objects, each
    decodable by {!Event.of_json} (required fields present and
    well-typed, tag consistent with payload), with strictly increasing
    event indices. Full traces start at index 0 with step 1; flight
    dumps start anywhere (the ring cut them out of a longer stream) but
    stay strictly increasing. *)

val validate_line : string -> (Event.t, string) result

val validate : string -> (int, string) result
(** Validate a whole trace (file contents). Returns the number of
    events, or the first error prefixed with its 1-based line number.
    The empty trace is valid. *)

val validate_file : string -> (int, string) result
(** {!validate} on a file's contents; [Error] on read failure. *)
