(* Shared harness for protocol tests: build a session over a configurable
   duplex link, drive a workload, return everything needed for
   assertions. Every session is watched by an invariant {!Oracle}; a
   scripted {!Channel.Fault} can be installed on either direction. *)

type t = {
  engine : Sim.Engine.t;
  duplex : Channel.Duplex.t;
  dlc : Dlc.Session.t;
  oracle : Oracle.t;
  delivered : (string, int) Hashtbl.t;  (* payload -> times delivered *)
  mutable delivery_order : string list;  (* newest first *)
}

let record_deliveries t =
  t.dlc.Dlc.Session.set_on_deliver (fun ~payload ->
      Hashtbl.replace t.delivered payload
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.delivered payload));
      t.delivery_order <- payload :: t.delivery_order)

let make_duplex ?(seed = 1) ?(ber = 0.) ?(cber = 0.) ?(distance = 1_000_000.)
    ?(rate = 100e6) ?iframe_error engine =
  let iframe_error =
    match iframe_error with
    | Some m -> m
    | None -> Channel.Error_model.uniform ~ber ()
  in
  Channel.Duplex.create_static engine
    ~rng:(Sim.Rng.create ~seed)
    ~distance_m:distance ~data_rate_bps:rate ~iframe_error
    ~cframe_error:(Channel.Error_model.uniform ~ber:cber ())

let install_faults ~faults ~reverse_faults (duplex : Channel.Duplex.t) =
  (match faults with
  | Some f -> Channel.Fault.install f duplex.Channel.Duplex.forward
  | None -> ());
  match reverse_faults with
  | Some f -> Channel.Fault.install f duplex.Channel.Duplex.reverse
  | None -> ()

(* Holding bound for the LAMS oracle: the resolving period (paper §3.3)
   plus slack for checkpoint phase, serialisation and processing. *)
let lams_holding_bound ~params ~rate (duplex : Channel.Duplex.t) =
  let rtt =
    2.
    *. Channel.Link.propagation_delay duplex.Channel.Duplex.forward ~at:0.
  in
  Lams_dlc.Params.resolving_period params ~rtt
  +. params.Lams_dlc.Params.w_cp
  +. (65536. /. rate)
  +. 1e-3

let lams ?seed ?ber ?cber ?distance ?(rate = 100e6) ?iframe_error ?faults
    ?reverse_faults ?(params = Lams_dlc.Params.default) () =
  let engine = Sim.Engine.create () in
  let duplex = make_duplex ?seed ?ber ?cber ?distance ~rate ?iframe_error engine in
  let session = Lams_dlc.Session.create engine ~params ~duplex in
  let oracle =
    Oracle.create ~name:"lams-oracle"
      (Oracle.Lams
         {
           c_depth = params.Lams_dlc.Params.c_depth;
           holding_bound = lams_holding_bound ~params ~rate duplex;
         })
  in
  Oracle.attach oracle ~probe:(Lams_dlc.Session.probe session) ~duplex;
  install_faults ~faults ~reverse_faults duplex;
  let t =
    {
      engine;
      duplex;
      dlc = Lams_dlc.Session.as_dlc session;
      oracle;
      delivered = Hashtbl.create 64;
      delivery_order = [];
    }
  in
  record_deliveries t;
  (t, session)

let nbdt ?seed ?ber ?cber ?distance ?rate ?iframe_error ?faults
    ?reverse_faults ?(params = Nbdt.Params.default) () =
  let engine = Sim.Engine.create () in
  let duplex = make_duplex ?seed ?ber ?cber ?distance ?rate ?iframe_error engine in
  let session = Nbdt.Session.create engine ~params ~duplex in
  let oracle = Oracle.create ~name:"nbdt-oracle" Oracle.Nbdt in
  Oracle.attach oracle ~probe:(Nbdt.Session.probe session) ~duplex;
  install_faults ~faults ~reverse_faults duplex;
  let t =
    {
      engine;
      duplex;
      dlc = Nbdt.Session.as_dlc session;
      oracle;
      delivered = Hashtbl.create 64;
      delivery_order = [];
    }
  in
  record_deliveries t;
  (t, session)

let hdlc ?seed ?ber ?cber ?distance ?rate ?iframe_error ?faults
    ?reverse_faults ?(params = Hdlc.Params.default) () =
  let engine = Sim.Engine.create () in
  let duplex = make_duplex ?seed ?ber ?cber ?distance ?rate ?iframe_error engine in
  let session = Hdlc.Session.create engine ~params ~duplex in
  let oracle =
    Oracle.create ~name:"hdlc-oracle"
      (Oracle.Hdlc
         {
           window = params.Hdlc.Params.window;
           seq_bits = params.Hdlc.Params.seq_bits;
         })
  in
  Oracle.attach oracle ~probe:(Hdlc.Session.probe session) ~duplex;
  install_faults ~faults ~reverse_faults duplex;
  let t =
    {
      engine;
      duplex;
      dlc = Hdlc.Session.as_dlc session;
      oracle;
      delivered = Hashtbl.create 64;
      delivery_order = [];
    }
  in
  record_deliveries t;
  (t, session)

let payload i = Printf.sprintf "payload-%06d" i

let offer_all t n =
  for i = 0 to n - 1 do
    if not (t.dlc.Dlc.Session.offer (payload i)) then
      Alcotest.failf "offer %d refused" i
  done

let assert_oracle t =
  Oracle.finalize t.oracle;
  if not (Oracle.ok t.oracle) then Alcotest.failf "%s" (Oracle.report t.oracle)

let run_to_completion ?(horizon = 60.) ?(check_oracle = true) t =
  Sim.Engine.run t.engine ~until:horizon;
  t.dlc.Dlc.Session.stop ();
  Sim.Engine.run t.engine;
  if check_oracle then assert_oracle t

let delivered_exactly_once t n =
  for i = 0 to n - 1 do
    match Hashtbl.find_opt t.delivered (payload i) with
    | Some 1 -> ()
    | Some k -> Alcotest.failf "payload %d delivered %d times" i k
    | None -> Alcotest.failf "payload %d never delivered" i
  done

let delivered_at_least_once t n =
  for i = 0 to n - 1 do
    if not (Hashtbl.mem t.delivered (payload i)) then
      Alcotest.failf "payload %d never delivered" i
  done

let in_order t =
  (* delivery order must equal offer order *)
  List.iteri
    (fun i p ->
      if p <> payload i then Alcotest.failf "position %d: got %s" i p)
    (List.rev t.delivery_order)
