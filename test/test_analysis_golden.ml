(* Golden regression tests for the §4 closed forms.

   The values below are the models' outputs at the paper's operating
   point (4,000 km, 300 Mbit/s, 8296-bit I-frames, 176-bit commands,
   10 us processing, strongly coded control channel; I_cp = 64 t_f,
   alpha = R/2, W = 127, N = 2000), captured from the current
   implementation. Test_analysis checks the formulas' *structure*
   (monotonicity, identities); this file pins their *numbers*, so an
   accidental change to any constant or term shows up as a diff against
   the paper-parameter table rather than passing a shape check. *)

let link ~ber =
  Analysis.Common.link_of_physical ~distance_m:4e6 ~data_rate_bps:300e6
    ~iframe_bits:8296 ~cframe_bits:176 ~t_proc:10e-6 ~ber ~cframe_ber:1e-8

let check ~what ~expect got =
  (* tight relative tolerance: these are pure float formulas, so only
     genuine formula changes (not platform noise) should move them by
     more than a few ulps *)
  let tol = 1e-12 *. Float.abs expect in
  if Float.abs (got -. expect) > tol then
    Alcotest.failf "%s: expected %.17g, got %.17g" what expect got

(* rows: ber, p_f, lams s_bar, lams d_low(1), lams buffer, lams n_total,
   lams eff, hdlc p_r, hdlc d_low(W), hdlc eff *)
let golden =
  [
    ( 1e-6,
      0.0082616872688179178,
      1.0083305113483674,
      0.027838268465560909,
      1007.049245379493,
      2016.6610226967323,
      0.66173702405621548,
      0.008263432726721049,
      0.03044137838942872,
      0.11365564746058449 );
    ( 1e-5,
      0.079612419777088425,
      1.0864987984277308,
      0.029996360218927029,
      1085.0901718512669,
      2172.9975968553904,
      0.61411365546648478,
      0.079614039657812219,
      0.032621910433580911,
      0.10522127276521287 );
    ( 3e-5,
      0.22032938213529166,
      1.282592901523864,
      0.035410180613198068,
      1280.8647762728328,
      2565.1858030476333,
      0.52019812816888855,
      0.22033075435437841,
      0.038601916305490321,
      0.087561429173817248 );
    ( 1e-4,
      0.56379435446718329,
      2.2924966933394901,
      0.063291884642322965,
      2289.1231186953819,
      4584.9933866780493,
      0.29100412183667845,
      0.56379512218844763,
      0.074478407596718282,
      0.043933998174973753 );
  ]

let test_golden_sweep () =
  List.iter
    (fun ( ber,
           p_f,
           lams_s_bar,
           lams_d_low1,
           lams_buffer,
           lams_n_total,
           lams_eff,
           hdlc_p_r,
           hdlc_d_low_w,
           hdlc_eff ) ->
      let l = link ~ber in
      let i_cp = 64. *. l.Analysis.Common.t_f in
      let alpha = l.Analysis.Common.r /. 2. in
      let w = 127 and n = 2000 in
      let tag what = Printf.sprintf "ber=%g %s" ber what in
      check ~what:(tag "p_f") ~expect:p_f l.Analysis.Common.p_f;
      check ~what:(tag "lams s_bar") ~expect:lams_s_bar
        (Analysis.Lams_model.s_bar l);
      check ~what:(tag "lams d_low(1)") ~expect:lams_d_low1
        (Analysis.Lams_model.d_low l ~i_cp ~n:1);
      (* the paper's identity: a single frame's D_low is its holding time *)
      check ~what:(tag "lams holding = d_low(1)") ~expect:lams_d_low1
        (Analysis.Lams_model.holding_time l ~i_cp);
      check ~what:(tag "lams transparent_buffer") ~expect:lams_buffer
        (Analysis.Lams_model.transparent_buffer l ~i_cp);
      check ~what:(tag "lams n_total") ~expect:lams_n_total
        (Analysis.Lams_model.n_total l ~i_cp ~n);
      check ~what:(tag "lams efficiency") ~expect:lams_eff
        (Analysis.Lams_model.throughput_efficiency l ~i_cp ~n);
      check ~what:(tag "hdlc p_r") ~expect:hdlc_p_r (Analysis.Hdlc_model.p_r l);
      check ~what:(tag "hdlc d_low(W)") ~expect:hdlc_d_low_w
        (Analysis.Hdlc_model.d_low l ~alpha ~w);
      check ~what:(tag "hdlc efficiency") ~expect:hdlc_eff
        (Analysis.Hdlc_model.throughput_efficiency l ~alpha ~w ~n))
    golden

let test_golden_numbering () =
  (* BER-independent: the numbering bound depends only on timing *)
  List.iter
    (fun ber ->
      let l = link ~ber in
      let i_cp = 64. *. l.Analysis.Common.t_f in
      check
        ~what:(Printf.sprintf "ber=%g numbering_size" ber)
        ~expect:1188.9877392424844
        (Analysis.Lams_model.numbering_size l ~i_cp ~c_depth:3))
    [ 1e-6; 1e-4 ]

let test_golden_p_c () =
  let l = link ~ber:1e-5 in
  check ~what:"p_c (strong control code)" ~expect:1.7599984600008934e-06
    l.Analysis.Common.p_c

let suite =
  [
    Alcotest.test_case "paper-point golden sweep" `Quick test_golden_sweep;
    Alcotest.test_case "numbering bound pinned" `Quick test_golden_numbering;
    Alcotest.test_case "control-error probability pinned" `Quick
      test_golden_p_c;
  ]
