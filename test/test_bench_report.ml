(* Benchmark-report pipeline tests: JSON codec round-trips, report
   serialisation, and the perf-regression gate (threshold logic plus the
   subject-appears / subject-disappears cases). *)

module Json = Bench_report.Json
module Report = Bench_report.Report
module Compare = Bench_report.Compare

(* --- JSON codec --------------------------------------------------------- *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("int", Json.Int (-42));
      ("float", Json.Float 3.141592653589793);
      ("text", Json.String "line\nbreak \"quoted\" back\\slash\ttab");
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
      ( "nested",
        Json.List
          [ Json.Int 1; Json.List [ Json.Bool false ]; Json.Obj [ ("k", Json.Null) ] ]
      );
    ]

let test_json_roundtrip () =
  let compact = Json.to_string sample_json in
  let pretty = Json.to_string ~indent:2 sample_json in
  (match Json.of_string compact with
  | Ok v -> Alcotest.(check bool) "compact round-trip" true (v = sample_json)
  | Error e -> Alcotest.fail e);
  match Json.of_string pretty with
  | Ok v -> Alcotest.(check bool) "pretty round-trip" true (v = sample_json)
  | Error e -> Alcotest.fail e

let test_json_float_fidelity () =
  let values = [ 0.; 1.5; -2.25; 1e-9; 6.02e23; 127720.30301951288 ] in
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok v ->
          Alcotest.(check (float 0.)) (Printf.sprintf "%h survives" f) f
            (Option.get (Json.to_float v))
      | Error e -> Alcotest.fail e)
    values;
  (* JSON has no non-finite numbers: they print as null and read as nan *)
  match Json.of_string (Json.to_string (Json.Float nan)) with
  | Ok v -> Alcotest.(check bool) "nan -> null -> nan" true
              (Float.is_nan (Option.get (Json.to_float v)))
  | Error e -> Alcotest.fail e

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" s
      | Error _ -> ())
    bad

let test_json_unicode_escape () =
  match Json.of_string {|"aé😀b"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "utf-8" "a\xc3\xa9\xf0\x9f\x98\x80b" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.fail e

(* --- report round-trip --------------------------------------------------- *)

let subject ?(r2 = 0.99) ?(mw = 12.) name ns =
  (* finite minor_words_per_run by default: the round-trip tests compare
     reports structurally, and nan <> nan would fail them *)
  {
    Report.name;
    ns_per_run = ns;
    r_square = r2;
    mean_ns = ns *. 1.01;
    stddev_ns = ns /. 20.;
    samples = 40;
    minor_words_per_run = mw;
  }

let meta =
  {
    Report.git_rev = "deadbee";
    ocaml_version = "5.1.1";
    host = "testhost";
    timestamp = "2026-08-06T00:00:00Z";
    quota_s = 0.25;
    limit = 200;
  }

let report subjects =
  { Report.schema_version = Report.schema_version; meta; subjects }

let test_report_roundtrip () =
  let r = report [ subject "a" 100.; subject "b" 2000.5 ] in
  let text = Json.to_string ~indent:2 (Report.to_json r) in
  match Json.of_string text with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Report.of_json j with
      | Error e -> Alcotest.fail e
      | Ok r' -> Alcotest.(check bool) "round-trip" true (r = r'))

let test_report_file_roundtrip () =
  let path = Filename.temp_file "bench_report" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let r = report [ subject "x" 42. ] in
      Report.write path r;
      match Report.read path with
      | Error e -> Alcotest.fail e
      | Ok r' -> Alcotest.(check bool) "file round-trip" true (r = r'))

let test_report_rejects_future_schema () =
  let j =
    Json.Obj
      [
        ("schema_version", Json.Int (Report.schema_version + 1));
        ("meta", Report.to_json (report []) |> Json.member "meta" |> Option.get);
        ("subjects", Json.List []);
      ]
  in
  match Report.of_json j with
  | Ok _ -> Alcotest.fail "accepted a future schema_version"
  | Error _ -> ()

let test_report_rejects_missing_field () =
  match Json.of_string "{\"schema_version\":1,\"subjects\":[]}" with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Report.of_json j with
      | Ok _ -> Alcotest.fail "accepted a report without meta"
      | Error _ -> ())

let test_subject_of_samples () =
  let s =
    Report.subject_of_samples ~name:"s" ~ns_per_run:10. ~r_square:1.
      ~ns_samples:[ 8.; 10.; 12. ] ()
  in
  Alcotest.(check int) "samples" 3 s.Report.samples;
  Alcotest.(check (float 1e-9)) "mean" 10. s.Report.mean_ns;
  Alcotest.(check (float 1e-9)) "stddev" 2. s.Report.stddev_ns;
  Alcotest.(check bool) "alloc defaults to unmeasured" true
    (Float.is_nan s.Report.minor_words_per_run)

let test_report_alloc_field_optional () =
  (* a subject with nan allocation serialises without the key (nan has no
     JSON representation) and a report lacking the key reads back as nan
     — which is how pre-counter baselines like BENCH_seed.json stay
     readable under schema 1 *)
  let s = subject "a" 100. in
  let without = { s with Report.minor_words_per_run = nan } in
  let j = Report.to_json (report [ without ]) in
  let text = Json.to_string j in
  Alcotest.(check bool) "nan key omitted" false
    (Astring.String.is_infix ~affix:"minor_words_per_run" text);
  match Json.of_string text with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Report.of_json j with
      | Error e -> Alcotest.fail e
      | Ok r ->
          let s' = List.hd r.Report.subjects in
          Alcotest.(check bool) "missing key reads as nan" true
            (Float.is_nan s'.Report.minor_words_per_run));
  let j = Report.to_json (report [ s ]) in
  match Report.of_json j with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check (float 1e-9)) "finite value survives" 12.
        (List.hd r.Report.subjects).Report.minor_words_per_run

(* --- regression gate ----------------------------------------------------- *)

let statuses verdict =
  List.map
    (fun d -> (d.Compare.name, d.Compare.status))
    verdict.Compare.deltas

let test_compare_identical () =
  let r = report [ subject "a" 100.; subject "b" 200. ] in
  let v = Compare.run ~baseline:r ~current:r () in
  Alcotest.(check bool) "not failed" false (Compare.failed v);
  Alcotest.(check int) "no regressions" 0 v.Compare.regressed;
  List.iter
    (fun (_, st) -> Alcotest.(check bool) "unchanged" true (st = Compare.Unchanged))
    (statuses v)

let test_compare_detects_2x_slowdown () =
  let baseline = report [ subject "a" 100.; subject "b" 200. ] in
  let current = report [ subject "a" 200.; subject "b" 200. ] in
  let v = Compare.run ~baseline ~current () in
  Alcotest.(check bool) "failed" true (Compare.failed v);
  Alcotest.(check int) "one regression" 1 v.Compare.regressed;
  Alcotest.(check bool) "a regressed" true
    (List.assoc "a" (statuses v) = Compare.Regressed)

let test_compare_threshold_boundaries () =
  let base = report [ subject "a" 100. ] in
  let at pct ns =
    let v = Compare.run ~threshold_pct:pct ~baseline:base
              ~current:(report [ subject "a" ns ]) () in
    List.assoc "a" (statuses v)
  in
  (* default band is (1/1.2, 1.2): 19% slower is inside, 21% outside *)
  Alcotest.(check bool) "+19% unchanged" true (at 20. 119. = Compare.Unchanged);
  Alcotest.(check bool) "+21% regressed" true (at 20. 121. = Compare.Regressed);
  Alcotest.(check bool) "-21% improved" true (at 20. 79. = Compare.Improved);
  (* loose CI threshold tolerates shared-runner noise *)
  Alcotest.(check bool) "+40% ok at 50%" true (at 50. 140. = Compare.Unchanged);
  Alcotest.(check bool) "+60% regressed at 50%" true (at 50. 160. = Compare.Regressed)

let test_compare_added_removed () =
  let baseline = report [ subject "old" 100.; subject "both" 50. ] in
  let current = report [ subject "both" 50.; subject "new" 10. ] in
  let v = Compare.run ~baseline ~current () in
  Alcotest.(check int) "added" 1 v.Compare.added;
  Alcotest.(check int) "removed" 1 v.Compare.removed;
  Alcotest.(check bool) "appearing/disappearing subjects do not fail the gate"
    false (Compare.failed v);
  Alcotest.(check bool) "old removed" true
    (List.assoc "old" (statuses v) = Compare.Removed);
  Alcotest.(check bool) "new added" true
    (List.assoc "new" (statuses v) = Compare.Added)

let test_compare_noisy_excluded () =
  (* r² below the bound on either side: the subject is flagged noisy and
     its (untrustworthy) 2x slowdown does not fail the gate *)
  let baseline = report [ subject "a" 100.; subject "b" 100. ] in
  let current = report [ subject ~r2:0.5 "a" 200.; subject "b" 100. ] in
  let v = Compare.run ~min_r_square:0.95 ~baseline ~current () in
  Alcotest.(check bool) "noisy subject does not fail the gate" false
    (Compare.failed v);
  Alcotest.(check int) "counted as noisy" 1 v.Compare.noisy;
  Alcotest.(check bool) "status is noisy" true
    (List.assoc "a" (statuses v) = Compare.Noisy);
  (* same comparison without the bound: a hard regression *)
  let v = Compare.run ~baseline ~current () in
  Alcotest.(check bool) "failed without min_r_square" true (Compare.failed v);
  (* nan r² is "fit not computed", never noisy *)
  let baseline = report [ subject ~r2:nan "c" 100. ] in
  let v = Compare.run ~min_r_square:0.95 ~baseline ~current:baseline () in
  Alcotest.(check int) "nan r² not noisy" 0 v.Compare.noisy

let test_compare_alloc_regression () =
  (* timing unchanged but allocation exploded: the gate must fail *)
  let baseline = report [ subject ~mw:10. "a" 100. ] in
  let current = report [ subject ~mw:100. "a" 100. ] in
  let v = Compare.run ~baseline ~current () in
  Alcotest.(check bool) "alloc regression fails" true (Compare.failed v);
  Alcotest.(check int) "counted" 1 v.Compare.alloc_regressed;
  Alcotest.(check int) "timing did not regress" 0 v.Compare.regressed;
  (* within threshold+slack: fine *)
  let v =
    Compare.run ~baseline ~current:(report [ subject ~mw:11. "a" 100. ]) ()
  in
  Alcotest.(check bool) "small growth ok" false (Compare.failed v);
  (* zero-alloc subjects: slack absorbs harness jitter, beyond it fails *)
  let zero = report [ subject ~mw:0. "z" 50. ] in
  let v =
    Compare.run ~baseline:zero ~current:(report [ subject ~mw:8. "z" 50. ]) ()
  in
  Alcotest.(check bool) "within slack ok" false (Compare.failed v);
  let v =
    Compare.run ~baseline:zero ~current:(report [ subject ~mw:9. "z" 50. ]) ()
  in
  Alcotest.(check bool) "beyond slack fails" true (Compare.failed v);
  (* unmeasured on either side: no alloc gating *)
  let v =
    Compare.run
      ~baseline:(report [ subject ~mw:nan "a" 100. ])
      ~current ()
  in
  Alcotest.(check bool) "nan baseline not gated" false (Compare.failed v)

let test_compare_rejects_bad_threshold () =
  let r = report [] in
  Alcotest.check_raises "non-positive threshold"
    (Invalid_argument "Compare.run: threshold_pct must be positive") (fun () ->
      ignore (Compare.run ~threshold_pct:0. ~baseline:r ~current:r ()))

(* --- stats JSON emitters ------------------------------------------------- *)

let test_online_to_json () =
  let acc = Stats.Online.create () in
  List.iter (Stats.Online.add acc) [ 1.; 2.; 3. ];
  match Json.of_string (Stats.Online.to_json_string acc) with
  | Error e -> Alcotest.fail e
  | Ok j ->
      Alcotest.(check (option int)) "count" (Some 3)
        (Option.bind (Json.member "count" j) Json.to_int);
      Alcotest.(check (float 1e-9)) "mean" 2.
        (Option.get (Option.bind (Json.member "mean" j) Json.to_float));
      Alcotest.(check (float 1e-9)) "sum" 6.
        (Option.get (Option.bind (Json.member "sum" j) Json.to_float))

let test_online_empty_to_json () =
  (* empty accumulator: mean is nan, min/max infinite -> all null in JSON *)
  match Json.of_string (Stats.Online.to_json_string (Stats.Online.create ())) with
  | Error e -> Alcotest.fail e
  | Ok j ->
      Alcotest.(check bool) "mean null" true (Json.member "mean" j = Some Json.Null);
      Alcotest.(check bool) "min null" true (Json.member "min" j = Some Json.Null)

let test_table_to_json () =
  let t = Stats.Table.create ~header:[ "n"; "value" ] in
  Stats.Table.add_row t [ "1"; "a \"quoted\" cell" ];
  Stats.Table.add_float_row t "2" [ 0.5 ];
  match Json.of_string (Stats.Table.to_json_string t) with
  | Error e -> Alcotest.fail e
  | Ok j ->
      let strings l = List.map (fun c -> Option.get (Json.to_str c)) l in
      Alcotest.(check (list string)) "header" [ "n"; "value" ]
        (strings (Option.get (Option.bind (Json.member "header" j) Json.to_list)));
      let rows = Option.get (Option.bind (Json.member "rows" j) Json.to_list) in
      Alcotest.(check int) "two rows" 2 (List.length rows);
      Alcotest.(check (list string)) "row with escapes"
        [ "1"; "a \"quoted\" cell" ]
        (strings (Option.get (Json.to_list (List.nth rows 0))))

let suite =
  [
    Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: float fidelity" `Quick test_json_float_fidelity;
    Alcotest.test_case "json: parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json: unicode escapes" `Quick test_json_unicode_escape;
    Alcotest.test_case "report: round-trip" `Quick test_report_roundtrip;
    Alcotest.test_case "report: file round-trip" `Quick test_report_file_roundtrip;
    Alcotest.test_case "report: rejects future schema" `Quick
      test_report_rejects_future_schema;
    Alcotest.test_case "report: rejects missing field" `Quick
      test_report_rejects_missing_field;
    Alcotest.test_case "report: subject_of_samples" `Quick test_subject_of_samples;
    Alcotest.test_case "compare: identical inputs pass" `Quick
      test_compare_identical;
    Alcotest.test_case "compare: 2x slowdown fails" `Quick
      test_compare_detects_2x_slowdown;
    Alcotest.test_case "compare: threshold boundaries" `Quick
      test_compare_threshold_boundaries;
    Alcotest.test_case "compare: added/removed subjects" `Quick
      test_compare_added_removed;
    Alcotest.test_case "compare: rejects bad threshold" `Quick
      test_compare_rejects_bad_threshold;
    Alcotest.test_case "report: alloc field optional in JSON" `Quick
      test_report_alloc_field_optional;
    Alcotest.test_case "compare: noisy subjects excluded from gate" `Quick
      test_compare_noisy_excluded;
    Alcotest.test_case "compare: allocation regressions fail" `Quick
      test_compare_alloc_regression;
    Alcotest.test_case "stats: Online.to_json_string" `Quick test_online_to_json;
    Alcotest.test_case "stats: empty Online emits nulls" `Quick
      test_online_empty_to_json;
    Alcotest.test_case "stats: Table.to_json_string" `Quick test_table_to_json;
  ]
