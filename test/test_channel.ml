(* Channel tests: error models and the link (timing, FIFO, corruption,
   outages). *)

let test_perfect_never_corrupts () =
  let rng = Sim.Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    match
      Channel.Error_model.fate Channel.Error_model.perfect rng ~header_bits:100
        ~payload_bits:8000
    with
    | Channel.Error_model.Clean -> ()
    | _ -> Alcotest.fail "perfect channel corrupted a frame"
  done

let test_uniform_fer_matches_analytic () =
  let ber = 1e-4 in
  let bits = 8000 in
  let model = Channel.Error_model.uniform ~ber () in
  let expected = Channel.Error_model.frame_error_prob model ~bits in
  let rng = Sim.Rng.create ~seed:2 in
  let n = 50_000 in
  let bad = ref 0 in
  for _ = 1 to n do
    match Channel.Error_model.fate model rng ~header_bits:104 ~payload_bits:(bits - 104) with
    | Channel.Error_model.Clean -> ()
    | _ -> incr bad
  done;
  let freq = float_of_int !bad /. float_of_int n in
  if Float.abs (freq -. expected) > 0.01 then
    Alcotest.failf "uniform FER %g != %g" freq expected

let test_uniform_frame_loss () =
  let model = Channel.Error_model.uniform ~frame_loss:1. ~ber:0. () in
  let rng = Sim.Rng.create ~seed:3 in
  (match Channel.Error_model.fate model rng ~header_bits:8 ~payload_bits:8 with
  | Channel.Error_model.Lost -> ()
  | _ -> Alcotest.fail "expected loss");
  Alcotest.(check (float 1e-9)) "fer includes loss" 1.
    (Channel.Error_model.frame_error_prob model ~bits:16)

let test_ber_inverse () =
  let bits = 8104 in
  let fer = 0.08 in
  let ber = Channel.Error_model.ber_for_frame_error_prob ~bits ~fer in
  let model = Channel.Error_model.uniform ~ber () in
  let recovered = Channel.Error_model.frame_error_prob model ~bits in
  if Float.abs (recovered -. fer) > 1e-9 then
    Alcotest.failf "inverse broken: %g != %g" recovered fer

let test_ge_stationary_rate () =
  let model =
    Channel.Error_model.gilbert_elliott ~ber_good:0. ~ber_bad:1.
      ~mean_burst_bits:100. ~mean_gap_bits:900. ()
  in
  (* stationary bad fraction = 0.1; a 1-bit frame is corrupt iff in the
     bad state, so corruption frequency ~ 0.1 *)
  let rng = Sim.Rng.create ~seed:4 in
  let n = 100_000 in
  let bad = ref 0 in
  for _ = 1 to n do
    match Channel.Error_model.fate model rng ~header_bits:1 ~payload_bits:0 with
    | Channel.Error_model.Clean -> ()
    | _ -> incr bad
  done;
  let freq = float_of_int !bad /. float_of_int n in
  if Float.abs (freq -. 0.1) > 0.02 then
    Alcotest.failf "GE stationary bad fraction %g != 0.1" freq

let test_ge_burstiness () =
  (* errors should cluster: P(error | previous frame errored) must be far
     above the stationary rate *)
  let model =
    Channel.Error_model.gilbert_elliott ~ber_good:0. ~ber_bad:1.
      ~mean_burst_bits:500. ~mean_gap_bits:9500. ()
  in
  let rng = Sim.Rng.create ~seed:5 in
  let n = 200_000 in
  let prev_bad = ref false in
  let after_bad = ref 0 and after_bad_bad = ref 0 and total_bad = ref 0 in
  for _ = 1 to n do
    let bad =
      match Channel.Error_model.fate model rng ~header_bits:10 ~payload_bits:0 with
      | Channel.Error_model.Clean -> false
      | _ -> true
    in
    if !prev_bad then begin
      incr after_bad;
      if bad then incr after_bad_bad
    end;
    if bad then incr total_bad;
    prev_bad := bad
  done;
  let p_cond = float_of_int !after_bad_bad /. float_of_int !after_bad in
  let p_marginal = float_of_int !total_bad /. float_of_int n in
  if p_cond < 3. *. p_marginal then
    Alcotest.failf "not bursty: P(bad|bad)=%g vs P(bad)=%g" p_cond p_marginal

let test_copy_independent () =
  let model =
    Channel.Error_model.gilbert_elliott ~ber_good:0. ~ber_bad:1.
      ~mean_burst_bits:10. ~mean_gap_bits:10. ()
  in
  let copy = Channel.Error_model.copy model in
  let r1 = Sim.Rng.create ~seed:6 and r2 = Sim.Rng.create ~seed:6 in
  (* identical streams on copies with identical rngs *)
  for _ = 1 to 100 do
    let a = Channel.Error_model.fate model r1 ~header_bits:5 ~payload_bits:5 in
    let b = Channel.Error_model.fate copy r2 ~header_bits:5 ~payload_bits:5 in
    if a <> b then Alcotest.fail "copies diverged under identical draws"
  done

(* --- batched fates --- *)

let test_fates_into_uniform_stream_identical () =
  (* the uniform batch path must consume the rng exactly like n
     sequential [fate] calls: existing traces depend on the draw order *)
  let mk () = Channel.Error_model.uniform ~frame_loss:0.05 ~ber:2e-4 () in
  let seq_model = mk () and batch_model = mk () in
  let r1 = Sim.Rng.create ~seed:11 and r2 = Sim.Rng.create ~seed:11 in
  let n = 2_000 in
  let expected =
    Array.init n (fun _ ->
        Channel.Error_model.fate seq_model r1 ~header_bits:104 ~payload_bits:8192)
  in
  let got = Array.make n Channel.Error_model.Clean in
  Channel.Error_model.fates_into batch_model r2 ~header_bits:104
    ~payload_bits:8192 got ~n;
  Array.iteri
    (fun i f ->
      if f <> expected.(i) then Alcotest.failf "fate %d diverged" i)
    got;
  Alcotest.(check bool) "rng streams aligned" true
    (Sim.Rng.unit_float r1 = Sim.Rng.unit_float r2)

let test_fates_into_perfect_and_bounds () =
  let rng = Sim.Rng.create ~seed:12 in
  let dst = Array.make 8 Channel.Error_model.Lost in
  (* only the first n slots are written *)
  Channel.Error_model.fates_into Channel.Error_model.perfect rng ~header_bits:8
    ~payload_bits:8 dst ~n:5;
  Array.iteri
    (fun i f ->
      let want =
        if i < 5 then Channel.Error_model.Clean else Channel.Error_model.Lost
      in
      if f <> want then Alcotest.failf "slot %d clobbered" i)
    dst;
  Alcotest.check_raises "n too large"
    (Invalid_argument "Channel.Model.fates_into: n out of range") (fun () ->
      Channel.Error_model.fates_into Channel.Error_model.perfect rng
        ~header_bits:8 ~payload_bits:8 dst ~n:9);
  Alcotest.check_raises "negative n"
    (Invalid_argument "Channel.Model.fates_into: n out of range") (fun () ->
      Channel.Error_model.fates_into Channel.Error_model.perfect rng
        ~header_bits:8 ~payload_bits:8 dst ~n:(-1))

let test_fates_into_ge_matches_sequential_rate () =
  (* the GE batch path draws a different (but identically distributed)
     stream; check it against the sequential path statistically: same
     overall corruption rate and comparable burstiness over a long run *)
  let mk () =
    Channel.Error_model.gilbert_elliott ~ber_good:1e-6 ~ber_bad:5e-3
      ~mean_burst_bits:20_000. ~mean_gap_bits:200_000. ()
  in
  let n = 30_000 in
  let bad_of arr =
    Array.fold_left
      (fun acc f -> if f = Channel.Error_model.Clean then acc else acc + 1)
      0 arr
  in
  let seq_model = mk () in
  let r1 = Sim.Rng.create ~seed:13 in
  let seq_fates =
    Array.init n (fun _ ->
        Channel.Error_model.fate seq_model r1 ~header_bits:104
          ~payload_bits:8192)
  in
  let batch_model = mk () in
  let r2 = Sim.Rng.create ~seed:14 in
  let batch_fates = Array.make n Channel.Error_model.Clean in
  Channel.Error_model.fates_into batch_model r2 ~header_bits:104
    ~payload_bits:8192 batch_fates ~n;
  let p_seq = float_of_int (bad_of seq_fates) /. float_of_int n in
  let p_batch = float_of_int (bad_of batch_fates) /. float_of_int n in
  if Float.abs (p_seq -. p_batch) > 0.01 then
    Alcotest.failf "corruption rates diverged: seq %g, batched %g" p_seq p_batch

let test_fates_allocates_fresh_array () =
  let model = Channel.Error_model.uniform ~ber:1e-3 () in
  let rng = Sim.Rng.create ~seed:15 in
  let a = Channel.Error_model.fates model rng ~header_bits:8 ~payload_bits:64 ~n:10 in
  Alcotest.(check int) "length" 10 (Array.length a);
  let empty =
    Channel.Error_model.fates model rng ~header_bits:8 ~payload_bits:64 ~n:0
  in
  Alcotest.(check int) "empty" 0 (Array.length empty)

(* --- Link --- *)

let make_link ?(ber = 0.) ?(distance = 3_000_000.) engine seed =
  Channel.Link.create_static engine
    ~rng:(Sim.Rng.create ~seed)
    ~distance_m:distance ~data_rate_bps:1e6
    ~iframe_error:(Channel.Error_model.uniform ~ber ())
    ~cframe_error:Channel.Error_model.perfect

let iframe ~seq ~bytes =
  Frame.Wire.Data (Frame.Iframe.create ~seq ~payload:(String.make bytes 'p'))

let test_link_delivery_time () =
  let engine = Sim.Engine.create () in
  let link = make_link engine 1 in
  let arrival = ref nan in
  Channel.Link.set_receiver link (fun _ -> arrival := Sim.Engine.now engine);
  let f = iframe ~seq:0 ~bytes:112 in
  (* 112 + 13 overhead = 125 bytes = 1000 bits at 1 Mb/s = 1 ms tx;
     3000 km = 10.007 ms propagation *)
  Channel.Link.send link f;
  Sim.Engine.run engine;
  let expected = 0.001 +. (3_000_000. /. Channel.Link.speed_of_light) in
  if Float.abs (!arrival -. expected) > 1e-6 then
    Alcotest.failf "arrival %g != %g" !arrival expected

let test_link_fifo_and_queueing () =
  let engine = Sim.Engine.create () in
  let link = make_link engine 2 in
  let seen = ref [] in
  Channel.Link.set_receiver link (fun rx ->
      match rx.Channel.Link.frame with
      | Frame.Wire.Data i -> seen := i.Frame.Iframe.seq :: !seen
      | _ -> ());
  for seq = 0 to 9 do
    Channel.Link.send link (iframe ~seq ~bytes:112)
  done;
  Alcotest.(check bool) "busy while serialising" true (Channel.Link.busy link);
  Alcotest.(check int) "queue behind transmitter" 9 (Channel.Link.queue_length link);
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "FIFO order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !seen)

let test_link_on_idle () =
  let engine = Sim.Engine.create () in
  let link = make_link engine 3 in
  Channel.Link.set_receiver link (fun _ -> ());
  let idle_count = ref 0 in
  Channel.Link.set_on_idle link (fun () -> incr idle_count);
  Channel.Link.send link (iframe ~seq:0 ~bytes:10);
  Channel.Link.send link (iframe ~seq:1 ~bytes:10);
  Sim.Engine.run engine;
  Alcotest.(check int) "idle fires once per drain" 1 !idle_count

let test_link_outage_loses_frames () =
  let engine = Sim.Engine.create () in
  let link = make_link engine 4 in
  let received = ref 0 in
  Channel.Link.set_receiver link (fun _ -> incr received);
  Channel.Link.set_down link;
  Channel.Link.send link (iframe ~seq:0 ~bytes:10);
  Sim.Engine.run engine;
  Alcotest.(check int) "nothing arrives" 0 !received;
  Alcotest.(check int) "counted lost" 1 (Channel.Link.stats link).Channel.Link.frames_lost;
  Channel.Link.set_up link;
  Channel.Link.send link (iframe ~seq:1 ~bytes:10);
  Sim.Engine.run engine;
  Alcotest.(check int) "delivers after recovery" 1 !received

let test_link_outage_mid_serialisation () =
  (* Outage fate is decided twice: at serialisation start (a frame
     started while dark is gone for good, even if the link returns
     before arrival) and again at arrival (a frame started while lit is
     claimed only if the link is still dark when it lands). At 1 Mb/s a
     112 B I-frame serialises in 1 ms and flies ~10 ms. *)
  let engine = Sim.Engine.create () in
  let link = make_link engine 41 in
  let received = ref 0 in
  Channel.Link.set_receiver link (fun _ -> incr received);
  let at delay f =
    ignore (Sim.Engine.schedule engine ~delay f : Sim.Engine.event_id)
  in
  (* A: cut mid-serialisation, restored before arrival -> delivered *)
  at 0. (fun () -> Channel.Link.send link (iframe ~seq:0 ~bytes:112));
  at 0.0005 (fun () -> Channel.Link.set_down link);
  at 0.002 (fun () -> Channel.Link.set_up link);
  (* B: cut mid-serialisation, still dark at arrival -> lost *)
  at 0.020 (fun () -> Channel.Link.send link (iframe ~seq:1 ~bytes:112));
  at 0.0205 (fun () -> Channel.Link.set_down link);
  at 0.035 (fun () -> Channel.Link.set_up link);
  (* C: serialisation starts while dark -> lost even though the link is
     back up before the would-be arrival *)
  at 0.039 (fun () -> Channel.Link.set_down link);
  at 0.040 (fun () -> Channel.Link.send link (iframe ~seq:2 ~bytes:112));
  at 0.042 (fun () -> Channel.Link.set_up link);
  (* D: clean -> delivered *)
  at 0.043 (fun () -> Channel.Link.send link (iframe ~seq:3 ~bytes:112));
  Sim.Engine.run engine;
  Alcotest.(check int) "A and D delivered" 2 !received;
  Alcotest.(check int) "B and C counted lost" 2
    (Channel.Link.stats link).Channel.Link.frames_lost

let test_link_corruption_statuses () =
  let engine = Sim.Engine.create () in
  (* ber=1 corrupts every frame; header corruption must be flagged *)
  let link = make_link ~ber:1.0 engine 5 in
  let statuses = ref [] in
  Channel.Link.set_receiver link (fun rx -> statuses := rx.Channel.Link.status :: !statuses);
  Channel.Link.send link (iframe ~seq:0 ~bytes:10);
  Sim.Engine.run engine;
  (match !statuses with
  | [ Channel.Link.Rx_header_corrupt ] -> ()
  | _ -> Alcotest.fail "expected header corruption at ber=1");
  Alcotest.(check int) "corruption counted" 1
    (Channel.Link.stats link).Channel.Link.frames_corrupted

let test_control_frames_use_control_model () =
  let engine = Sim.Engine.create () in
  (* I-frame channel destroys everything; control channel is perfect *)
  let link =
    Channel.Link.create_static engine
      ~rng:(Sim.Rng.create ~seed:6)
      ~distance_m:1000. ~data_rate_bps:1e6
      ~iframe_error:(Channel.Error_model.uniform ~ber:1.0 ())
      ~cframe_error:Channel.Error_model.perfect
  in
  let ok = ref 0 in
  Channel.Link.set_receiver link (fun rx ->
      if rx.Channel.Link.status = Channel.Link.Rx_ok then incr ok);
  Channel.Link.send link
    (Frame.Wire.Control (Frame.Cframe.request_nak ~issue_time:0.));
  Channel.Link.send link (iframe ~seq:0 ~bytes:10);
  Sim.Engine.run engine;
  Alcotest.(check int) "only the control frame survives" 1 !ok

let test_moving_link_distance () =
  let engine = Sim.Engine.create () in
  (* distance grows 1000 km per second *)
  let link =
    Channel.Link.create engine
      ~rng:(Sim.Rng.create ~seed:7)
      ~distance_m:(fun t -> 1_000_000. +. (1e9 *. t))
      ~data_rate_bps:1e9 ~iframe_error:Channel.Error_model.perfect
      ~cframe_error:Channel.Error_model.perfect
  in
  let arrivals = ref [] in
  Channel.Link.set_receiver link (fun _ -> arrivals := Sim.Engine.now engine :: !arrivals);
  Channel.Link.send link (iframe ~seq:0 ~bytes:10);
  ignore
    (Sim.Engine.schedule engine ~delay:0.5 (fun () ->
         Channel.Link.send link (iframe ~seq:1 ~bytes:10)));
  Sim.Engine.run engine;
  match List.rev !arrivals with
  | [ a; b ] ->
      (* second frame departs when the link is much longer *)
      if not (b -. 0.5 > a +. 1e-3) then
        Alcotest.failf "growing distance not reflected: %g vs %g" a b
  | _ -> Alcotest.fail "expected two arrivals"

(* --- error positions and the bit-level coded path --- *)

let test_error_positions_rate () =
  let model = Channel.Error_model.uniform ~ber:0.01 () in
  let rng = Sim.Rng.create ~seed:9 in
  let total = ref 0 in
  let trials = 200 and bits = 10_000 in
  for _ = 1 to trials do
    let ps = Channel.Error_model.error_positions model rng ~bits in
    List.iter (fun p -> if p < 0 || p >= bits then Alcotest.failf "pos %d" p) ps;
    (* sorted and distinct *)
    let rec check = function
      | a :: (b :: _ as rest) ->
          if a >= b then Alcotest.fail "not sorted/distinct";
          check rest
      | _ -> ()
    in
    check ps;
    total := !total + List.length ps
  done;
  let rate = float_of_int !total /. float_of_int (trials * bits) in
  if Float.abs (rate -. 0.01) > 0.002 then
    Alcotest.failf "error rate %g != 0.01" rate

let test_error_positions_perfect () =
  let rng = Sim.Rng.create ~seed:10 in
  Alcotest.(check (list int)) "no errors" []
    (Channel.Error_model.error_positions Channel.Error_model.perfect rng ~bits:1000)

let coded_path ?(error_model = Channel.Error_model.perfect) ?(seed = 11) () =
  Channel.Coded_path.create
    ~rng:(Sim.Rng.create ~seed)
    ~iframe_code:Fec.Code.hamming74 ~cframe_code:Fec.Code.conv_default
    ~error_model

let test_coded_path_clean_roundtrip () =
  let path = coded_path () in
  let frames =
    [
      Frame.Wire.Data (Frame.Iframe.create ~seq:5 ~payload:"clean payload");
      Frame.Wire.Control
        (Frame.Cframe.checkpoint ~cp_seq:2 ~issue_time:1.5 ~stop_go:false
           ~enforced:false ~next_expected:9 ~naks:[ 4; 6 ]);
      Frame.Wire.Hdlc_control
        (Frame.Hframe.create ~kind:Frame.Hframe.Srej ~nr:3 ~pf:true);
    ]
  in
  List.iter
    (fun frame ->
      let outcome, decoded = Channel.Coded_path.transmit path frame in
      Alcotest.(check bool) "clean" true (outcome.Channel.Coded_path.status = Channel.Link.Rx_ok);
      Alcotest.(check int) "no injected errors" 0 outcome.Channel.Coded_path.bit_errors;
      match decoded with
      | Some _ -> ()
      | None -> Alcotest.fail "frame lost on a clean path")
    frames

let test_coded_path_corrects_light_noise () =
  (* hamming on the I-frame corrects sub-threshold noise: residual status
     distribution must be far better than raw *)
  let path =
    coded_path ~error_model:(Channel.Error_model.uniform ~ber:2e-4 ()) ~seed:12 ()
  in
  let frame = Frame.Wire.Data (Frame.Iframe.create ~seq:0 ~payload:(String.make 64 'q')) in
  let fer = Channel.Coded_path.residual_fer path frame ~trials:300 in
  let raw_fer =
    Channel.Error_model.frame_error_prob
      (Channel.Error_model.uniform ~ber:2e-4 ())
      ~bits:(8 * Frame.Wire.size_bytes frame)
  in
  if not (fer < raw_fer /. 2.) then
    Alcotest.failf "coding did not help: residual %g vs raw %g" fer raw_fer

let test_coded_path_payload_corrupt_identifies_seq () =
  (* heavy noise with identity coding: when only the payload breaks, the
     receiver still learns the seq — the NAK-enabling property *)
  let path =
    Channel.Coded_path.create
      ~rng:(Sim.Rng.create ~seed:13)
      ~iframe_code:Fec.Code.identity ~cframe_code:Fec.Code.identity
      ~error_model:(Channel.Error_model.uniform ~ber:2e-3 ())
  in
  let frame =
    Frame.Wire.Data (Frame.Iframe.create ~seq:4242 ~payload:(String.make 400 'z'))
  in
  let saw_payload_corrupt = ref false in
  for _ = 1 to 200 do
    match Channel.Coded_path.transmit path frame with
    | { Channel.Coded_path.status = Channel.Link.Rx_payload_corrupt; _ },
      Some (Frame.Wire.Data i) ->
        Alcotest.(check int) "seq recovered" 4242 i.Frame.Iframe.seq;
        saw_payload_corrupt := true
    | _ -> ()
  done;
  Alcotest.(check bool) "payload-corrupt cases occurred" true !saw_payload_corrupt

let suite =
  [
    Alcotest.test_case "perfect never corrupts" `Quick test_perfect_never_corrupts;
    Alcotest.test_case "uniform FER analytic" `Slow test_uniform_fer_matches_analytic;
    Alcotest.test_case "uniform frame loss" `Quick test_uniform_frame_loss;
    Alcotest.test_case "ber inverse" `Quick test_ber_inverse;
    Alcotest.test_case "GE stationary rate" `Slow test_ge_stationary_rate;
    Alcotest.test_case "GE burstiness" `Slow test_ge_burstiness;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "batched fates: uniform stream-identical" `Quick
      test_fates_into_uniform_stream_identical;
    Alcotest.test_case "batched fates: perfect + bounds" `Quick
      test_fates_into_perfect_and_bounds;
    Alcotest.test_case "batched fates: GE rate matches sequential" `Slow
      test_fates_into_ge_matches_sequential_rate;
    Alcotest.test_case "fates allocates fresh array" `Quick
      test_fates_allocates_fresh_array;
    Alcotest.test_case "link delivery time" `Quick test_link_delivery_time;
    Alcotest.test_case "link FIFO + queueing" `Quick test_link_fifo_and_queueing;
    Alcotest.test_case "link on_idle" `Quick test_link_on_idle;
    Alcotest.test_case "link outage" `Quick test_link_outage_loses_frames;
    Alcotest.test_case "link outage mid-serialisation" `Quick
      test_link_outage_mid_serialisation;
    Alcotest.test_case "corruption statuses" `Quick test_link_corruption_statuses;
    Alcotest.test_case "control frames use control model" `Quick
      test_control_frames_use_control_model;
    Alcotest.test_case "moving link distance" `Quick test_moving_link_distance;
    Alcotest.test_case "error positions rate" `Slow test_error_positions_rate;
    Alcotest.test_case "error positions perfect" `Quick test_error_positions_perfect;
    Alcotest.test_case "coded path clean roundtrip" `Quick test_coded_path_clean_roundtrip;
    Alcotest.test_case "coded path corrects noise" `Quick test_coded_path_corrects_light_noise;
    Alcotest.test_case "coded path identifies seq" `Quick
      test_coded_path_payload_corrupt_identifies_seq;
  ]
