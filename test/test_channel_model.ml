(* Channel.Model backend tests: trace file format, deterministic replay,
   Gilbert-Elliott calibration, the batched-vs-sequential differential
   property, the asymmetric duplex combinator, and the golden replayed
   DLC session. *)

module M = Channel.Model
module TM = Channel.Trace_model
module EM = Channel.Error_model

let fate = Alcotest.testable (Fmt.of_to_string (fun f -> String.make 1 (TM.fate_token f))) ( = )

(* --- trace file format -------------------------------------------------- *)

let gen_fate =
  QCheck2.Gen.oneofl
    [ M.Clean; M.Corrupt { header = true }; M.Corrupt { header = false }; M.Lost ]

let prop_trace_roundtrip =
  QCheck2.Test.make ~name:"trace print/parse round-trip" ~count:100
    QCheck2.Gen.(
      pair
        (array_size (int_range 0 400) gen_fate)
        (option (string_size ~gen:(char_range 'a' 'z') (int_range 0 30))))
    (fun (data, comment) ->
      let text = TM.to_string ?comment data in
      TM.parse text = data)

let test_parse_pins () =
  (* version mismatch *)
  Alcotest.check_raises "version rejected"
    (TM.Parse_error
       "channel trace: unsupported version \"v2\" (this reader understands v1)")
    (fun () -> ignore (TM.parse "lams-dlc-channel-trace v2 frames=2\n..\n"));
  (* truncation: header promises more frames than the body holds *)
  Alcotest.check_raises "truncation rejected"
    (TM.Parse_error
       "channel trace: header promises 5 frames but body has 4 (truncated or \
        trailing data)")
    (fun () -> ignore (TM.parse "lams-dlc-channel-trace v1 frames=5\n.ph.\n"));
  (* trailing garbage is the same count check in the other direction *)
  Alcotest.check_raises "trailing tokens rejected"
    (TM.Parse_error
       "channel trace: header promises 2 frames but body has 4 (truncated or \
        trailing data)")
    (fun () -> ignore (TM.parse "lams-dlc-channel-trace v1 frames=2\n.ph.\n"));
  Alcotest.check_raises "bad magic rejected"
    (TM.Parse_error
       "channel trace: bad magic \"something-else\" (expected \
        \"lams-dlc-channel-trace\")")
    (fun () -> ignore (TM.parse "something-else v1 frames=0\n"));
  Alcotest.check_raises "unknown token rejected"
    (TM.Parse_error "channel trace: unknown fate token 'x'")
    (fun () -> ignore (TM.parse "lams-dlc-channel-trace v1 frames=1\nx\n"))

let test_parse_comments_and_whitespace () =
  let text =
    "# recorded somewhere\n\n# another comment\n\
     lams-dlc-channel-trace v1 frames=6\n\
     .p h\t.\n# mid-stream comment\nL. # trailing comment\n"
  in
  Alcotest.(check (array fate))
    "comments and whitespace ignored"
    [|
      M.Clean;
      M.Corrupt { header = false };
      M.Corrupt { header = true };
      M.Clean;
      M.Lost;
      M.Clean;
    |]
    (TM.parse text)

let test_error_rate () =
  Alcotest.(check (float 1e-9)) "empty" 0. (TM.error_rate [||]);
  Alcotest.(check (float 1e-9))
    "half" 0.5
    (TM.error_rate [| M.Clean; M.Lost; M.Clean; M.Corrupt { header = true } |])

(* --- replay ------------------------------------------------------------- *)

let sample = [| M.Clean; M.Corrupt { header = false }; M.Lost; M.Corrupt { header = true } |]

let draw model rng n =
  Array.init n (fun _ -> M.fate model rng ~header_bits:104 ~payload_bits:8192)

let test_replay_truncate_and_loop () =
  let rng = Sim.Rng.create ~seed:1 in
  let trunc = TM.replay ~policy:TM.Truncate sample in
  Alcotest.(check (array fate))
    "truncate: recorded fates then Clean"
    (Array.append sample [| M.Clean; M.Clean |])
    (draw trunc rng 6);
  let loop = TM.replay ~policy:TM.Loop sample in
  Alcotest.(check (array fate))
    "loop: trace is periodic"
    (Array.append sample sample)
    (draw loop rng 8)

let test_replay_offset () =
  let rng = Sim.Rng.create ~seed:2 in
  let m = TM.replay ~offset:2 sample in
  Alcotest.(check fate) "starts mid-trace" M.Lost
    (M.fate m rng ~header_bits:1 ~payload_bits:1);
  (* offsets reduce modulo the trace length: any int is a valid window *)
  let m6 = TM.replay ~offset:6 sample and m2 = TM.replay ~offset:2 sample in
  Alcotest.(check (array fate)) "offset wraps" (draw m2 rng 8) (draw m6 rng 8)

let test_replay_consumes_no_randomness () =
  let a = Sim.Rng.create ~seed:3 and b = Sim.Rng.create ~seed:3 in
  let m = TM.replay sample in
  ignore (draw m a 16);
  M.advance m a ~bits:100_000;
  Alcotest.(check int64) "rng stream untouched by replay" (Sim.Rng.bits64 b)
    (Sim.Rng.bits64 a)

let test_replay_copy_independent () =
  let rng = Sim.Rng.create ~seed:4 in
  let m = TM.replay sample in
  ignore (draw m rng 2);
  let c = M.copy m in
  Alcotest.(check (array fate)) "copy resumes at the cursor" (draw m rng 4)
    (draw c rng 4)

let test_replay_batch_matches_sequential () =
  let rng = Sim.Rng.create ~seed:5 in
  let seq = TM.replay sample and batch = TM.replay sample in
  let n = 11 in
  let expected = draw seq rng n in
  let got = Array.make n M.Clean in
  M.fates_into batch rng ~header_bits:104 ~payload_bits:8192 got ~n;
  Alcotest.(check (array fate)) "batch deals the same fates" expected got

let test_replay_error_positions_and_fer () =
  let rng = Sim.Rng.create ~seed:6 in
  let m = TM.replay sample in
  Alcotest.(check (list int)) "clean frame flips nothing" []
    (M.error_positions m rng ~bits:1000);
  Alcotest.(check bool) "corrupt frame flips a dense burst" true
    (List.length (M.error_positions m rng ~bits:1000) > 0);
  Alcotest.(check (float 1e-9)) "frame_error_prob is the empirical rate" 0.75
    (M.frame_error_prob m ~bits:8296)

let test_replay_empty_rejected () =
  Alcotest.check_raises "empty trace"
    (Invalid_argument "Trace_model.replay: empty trace") (fun () ->
      ignore (TM.replay [||]))

(* --- batched fates: n = 0 and nonuniform spans -------------------------- *)

let test_fates_into_n_zero_consumes_nothing () =
  let models =
    [
      ("perfect", EM.perfect);
      ("uniform", EM.uniform ~frame_loss:0.1 ~ber:1e-4 ());
      ( "ge",
        EM.gilbert_elliott ~ber_good:1e-6 ~ber_bad:0.5 ~mean_burst_bits:1000.
          ~mean_gap_bits:9000. () );
      ("replay", TM.replay sample);
    ]
  in
  List.iter
    (fun (name, model) ->
      let rng = Sim.Rng.create ~seed:7 and fresh = Sim.Rng.create ~seed:7 in
      let dst = Array.make 4 M.Lost in
      M.fates_into model rng ~header_bits:104 ~payload_bits:8192 dst ~n:0;
      Alcotest.(check (array fate))
        (name ^ ": dst untouched")
        [| M.Lost; M.Lost; M.Lost; M.Lost |]
        dst;
      Alcotest.(check int64)
        (name ^ ": rng untouched")
        (Sim.Rng.bits64 fresh) (Sim.Rng.bits64 rng))
    models

let test_ge_batch_mixed_spans () =
  (* all-header spans can only corrupt headers; all-payload spans can
     only corrupt payloads — whatever the chain state does *)
  let mk () =
    EM.gilbert_elliott ~ber_good:1e-4 ~ber_bad:0.3 ~mean_burst_bits:5_000.
      ~mean_gap_bits:5_000. ()
  in
  let rng = Sim.Rng.create ~seed:8 in
  let n = 2_000 in
  let dst = Array.make n M.Clean in
  M.fates_into (mk ()) rng ~header_bits:512 ~payload_bits:0 dst ~n;
  let saw_header = ref false in
  Array.iter
    (fun f ->
      match f with
      | M.Corrupt { header = false } ->
          Alcotest.fail "payload corruption from a 0-bit payload"
      | M.Corrupt { header = true } -> saw_header := true
      | M.Clean | M.Lost -> ())
    dst;
  Alcotest.(check bool) "header-only span did corrupt" true !saw_header;
  M.fates_into (mk ()) rng ~header_bits:0 ~payload_bits:512 dst ~n;
  let saw_payload = ref false in
  Array.iter
    (fun f ->
      match f with
      | M.Corrupt { header = true } ->
          Alcotest.fail "header corruption from a 0-bit header"
      | M.Corrupt { header = false } -> saw_payload := true
      | M.Clean | M.Lost -> ())
    dst;
  Alcotest.(check bool) "payload-only span did corrupt" true !saw_payload

(* The batched GE path draws a different stream than sequential fate
   calls but must agree in distribution across the parameter space, not
   just at one pinned operating point. *)
let prop_ge_batch_vs_sequential =
  QCheck2.Test.make
    ~name:"GE fates_into distribution-compatible with sequential fate" ~count:15
    QCheck2.Gen.(
      triple (int_range 0 1_000_000) (float_range 0.01 0.5) (int_range 2 40))
    (fun (seed, ber_bad, burst_frames) ->
      let frame_bits = 1000. in
      let mk () =
        EM.gilbert_elliott ~ber_good:0. ~ber_bad
          ~mean_burst_bits:(float_of_int burst_frames *. frame_bits)
          ~mean_gap_bits:(10. *. float_of_int burst_frames *. frame_bits)
          ()
      in
      let n = 6_000 in
      let bad arr =
        Array.fold_left (fun a f -> if f = M.Clean then a else a + 1) 0 arr
      in
      let r1 = Sim.Rng.create ~seed in
      let seq = mk () in
      let seq_fates =
        Array.init n (fun _ -> M.fate seq r1 ~header_bits:100 ~payload_bits:900)
      in
      let r2 = Sim.Rng.create ~seed:(seed + 1) in
      let batch = mk () in
      let batch_fates = Array.make n M.Clean in
      M.fates_into batch r2 ~header_bits:100 ~payload_bits:900 batch_fates ~n;
      let p_seq = float_of_int (bad seq_fates) /. float_of_int n in
      let p_batch = float_of_int (bad batch_fates) /. float_of_int n in
      (* generous bound: correlated frames mean few independent samples
         at the long-burst end of the generator range *)
      Float.abs (p_seq -. p_batch) <= 0.05 +. (0.5 *. Float.max p_seq p_batch))

(* --- calibration -------------------------------------------------------- *)

let test_calibration_roundtrip () =
  (* known GE -> long trace -> fit: sojourn means and the bad-state BER
     must come back within moment-matching tolerance (seed-pinned) *)
  let frame_bits = 1000 in
  let ber_bad = 0.0023 (* in-burst frame-error density ~0.9 *) in
  let mean_burst_bits = 20_000. and mean_gap_bits = 200_000. in
  let model =
    EM.gilbert_elliott ~ber_good:0. ~ber_bad ~mean_burst_bits ~mean_gap_bits ()
  in
  let rng = Sim.Rng.create ~seed:42 in
  let n = 30_000 in
  let trace = M.fates model rng ~header_bits:100 ~payload_bits:900 ~n in
  match Channel.Calibrate.fit ~frame_bits trace with
  | Error e -> Alcotest.failf "fit refused a healthy trace: %s" e
  | Ok f ->
      let within ~tol ~want got name =
        if Float.abs (got -. want) > tol *. want then
          Alcotest.failf "%s: recovered %g, want %g +/- %g%%" name got want
            (100. *. tol)
      in
      within ~tol:0.35 ~want:mean_burst_bits f.Channel.Calibrate.mean_burst_bits
        "mean_burst_bits";
      within ~tol:0.35 ~want:mean_gap_bits f.Channel.Calibrate.mean_gap_bits
        "mean_gap_bits";
      within ~tol:1.0 ~want:ber_bad f.Channel.Calibrate.ber_bad "ber_bad";
      Alcotest.(check (float 1e-9)) "ber_good pinned to 0" 0.
        f.Channel.Calibrate.ber_good;
      if Channel.Calibrate.residual f > 0.5 then
        Alcotest.failf "fit residual too large: %g"
          (Channel.Calibrate.residual f);
      (* the twin is constructible and carries the fitted parameters *)
      let twin = Channel.Calibrate.model f in
      Alcotest.(check bool) "twin describes as gilbert-elliott" true
        (String.length (M.describe twin) > 0
        && String.sub (M.describe twin) 0 7 = "gilbert")

let expect_degenerate name trace expect_substring =
  match Channel.Calibrate.fit ~frame_bits:1000 trace with
  | Ok f ->
      Alcotest.failf "%s: expected a diagnostic, got a fit (residual %g)" name
        (Channel.Calibrate.residual f)
  | Error e ->
      let has_sub s sub =
        Astring.String.find_sub ~sub s |> Option.is_some
      in
      if not (has_sub e expect_substring) then
        Alcotest.failf "%s: diagnostic %S does not mention %S" name e
          expect_substring

let test_calibration_degenerate () =
  expect_degenerate "empty" [||] "empty";
  expect_degenerate "all-clean" (Array.make 500 M.Clean) "all-clean";
  expect_degenerate "all-bad" (Array.make 500 M.Lost) "all-bad";
  let single_burst =
    Array.concat
      [
        Array.make 50 M.Clean;
        Array.make 5 (M.Corrupt { header = false });
        Array.make 50 M.Clean;
      ]
  in
  expect_degenerate "single burst" single_burst "burst"

(* --- asymmetric duplex -------------------------------------------------- *)

let iframe ~seq ~bytes =
  Frame.Wire.Data (Frame.Iframe.create ~seq ~payload:(String.make bytes 'p'))

let test_asymmetric_duplex_directions () =
  let engine = Sim.Engine.create () in
  let destroy = EM.uniform ~ber:1.0 () in
  let duplex =
    Channel.Duplex.create_asymmetric engine
      ~rng:(Sim.Rng.create ~seed:21)
      ~distance_m:(fun _ -> 1000.)
      ~data_rate_bps:1e6
      ~up:(EM.perfect, EM.perfect)
      ~down:(destroy, destroy)
  in
  let fwd = ref [] and rev = ref [] in
  Channel.Link.set_receiver duplex.Channel.Duplex.forward (fun rx ->
      fwd := rx.Channel.Link.status :: !fwd);
  Channel.Link.set_receiver duplex.Channel.Duplex.reverse (fun rx ->
      rev := rx.Channel.Link.status :: !rev);
  for seq = 0 to 9 do
    Channel.Link.send duplex.Channel.Duplex.forward (iframe ~seq ~bytes:64);
    Channel.Link.send duplex.Channel.Duplex.reverse (iframe ~seq ~bytes:64)
  done;
  Sim.Engine.run engine;
  Alcotest.(check int) "uplink delivered everything" 10 (List.length !fwd);
  List.iter
    (fun s ->
      if s <> Channel.Link.Rx_ok then Alcotest.fail "uplink corrupted a frame")
    !fwd;
  List.iter
    (fun s ->
      if s = Channel.Link.Rx_ok then
        Alcotest.fail "downlink at ber=1 delivered a clean frame")
    !rev

let test_asymmetric_matches_symmetric () =
  (* with the same model in both directions, create_asymmetric must draw
     exactly like create: the RNG split discipline is part of the API *)
  let statuses create_duplex =
    let engine = Sim.Engine.create () in
    let duplex = create_duplex engine (Sim.Rng.create ~seed:33) in
    let log = ref [] in
    Channel.Link.set_receiver duplex.Channel.Duplex.forward (fun rx ->
        log := ("f", rx.Channel.Link.status) :: !log);
    Channel.Link.set_receiver duplex.Channel.Duplex.reverse (fun rx ->
        log := ("r", rx.Channel.Link.status) :: !log);
    for seq = 0 to 49 do
      Channel.Link.send duplex.Channel.Duplex.forward (iframe ~seq ~bytes:256);
      Channel.Link.send duplex.Channel.Duplex.reverse (iframe ~seq ~bytes:256)
    done;
    Sim.Engine.run engine;
    List.rev !log
  in
  let i () = EM.uniform ~ber:3e-4 () and c () = EM.uniform ~ber:1e-5 () in
  let sym =
    statuses (fun engine rng ->
        Channel.Duplex.create engine ~rng
          ~distance_m:(fun _ -> 1000.)
          ~data_rate_bps:1e6 ~iframe_error:(i ()) ~cframe_error:(c ()))
  in
  let asym =
    statuses (fun engine rng ->
        Channel.Duplex.create_asymmetric engine ~rng
          ~distance_m:(fun _ -> 1000.)
          ~data_rate_bps:1e6
          ~up:(i (), c ())
          ~down:(i (), c ()))
  in
  Alcotest.(check int) "same deliveries" (List.length sym) (List.length asym);
  List.iter2
    (fun (d1, s1) (d2, s2) ->
      if d1 <> d2 || s1 <> s2 then
        Alcotest.fail "asymmetric duplex diverged from symmetric twin")
    sym asym

(* --- golden replayed session -------------------------------------------- *)

let data_path name =
  if Sys.file_exists (Filename.concat "data" name) then
    Filename.concat "data" name
  else Filename.concat "test/data" name

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* the canonical replayed session behind the golden:
   `sim --channel-trace test/data/channel-trace-golden.trace --seed 850
        --frames 120 --payload 256 --trace ...`
   (seed 850 puts the replay offset inside the eclipse's errored region) *)
let regenerate_golden_replay () =
  let trace_data = TM.load (data_path "channel-trace-golden.trace") in
  let recorder =
    Trace.Recorder.create ~name:"channel-replay-golden.jsonl" ()
  in
  let buf = Buffer.create 65536 in
  Trace.Recorder.set_sink recorder (fun e ->
      Buffer.add_string buf (Trace.Event.to_line e);
      Buffer.add_char buf '\n');
  let cfg =
    {
      Experiments.Scenario.default with
      Experiments.Scenario.seed = 850;
      n_frames = 120;
      payload_bytes = 256;
      cframe_ber = 1e-8;
      channel_trace = Some trace_data;
    }
  in
  let proto =
    Experiments.Scenario.Lams (Experiments.Scenario.default_lams_params cfg)
  in
  (* oracle-watched: the replayed channel must not break any protocol
     invariant, and a violation would freeze a flight dump *)
  let result, violations =
    Experiments.Scenario.run_checked ~recorder cfg proto
  in
  Alcotest.(check int) "replay is invariant-clean" 0 (List.length violations);
  Alcotest.(check bool) "transfer completed under replay" true
    result.Experiments.Scenario.completed;
  ( Buffer.contents buf,
    Bench_report.Json.to_string ~indent:2
      (Trace.Metrics.to_json (Trace.Recorder.metrics recorder))
    ^ "\n" )

let test_golden_replay () =
  let jsonl, metrics = regenerate_golden_replay () in
  (match Trace.Schema.validate jsonl with
  | Ok n -> Alcotest.(check bool) "events recorded" true (n > 100)
  | Error e -> Alcotest.failf "replayed trace breaks the schema: %s" e);
  Alcotest.(check string)
    "replayed session is byte-identical to the checked-in golden"
    (read_file (data_path "channel-replay-golden.jsonl"))
    jsonl;
  Alcotest.(check string)
    "metrics sidecar matches too"
    (read_file (data_path "channel-replay-golden.jsonl.metrics.json"))
    metrics

let suite =
  [
    QCheck_alcotest.to_alcotest prop_trace_roundtrip;
    Alcotest.test_case "parse rejection pins" `Quick test_parse_pins;
    Alcotest.test_case "parse comments/whitespace" `Quick
      test_parse_comments_and_whitespace;
    Alcotest.test_case "error rate" `Quick test_error_rate;
    Alcotest.test_case "replay truncate/loop" `Quick
      test_replay_truncate_and_loop;
    Alcotest.test_case "replay offset windows" `Quick test_replay_offset;
    Alcotest.test_case "replay consumes no randomness" `Quick
      test_replay_consumes_no_randomness;
    Alcotest.test_case "replay copy independence" `Quick
      test_replay_copy_independent;
    Alcotest.test_case "replay batch = sequential" `Quick
      test_replay_batch_matches_sequential;
    Alcotest.test_case "replay error positions + fer" `Quick
      test_replay_error_positions_and_fer;
    Alcotest.test_case "replay rejects empty trace" `Quick
      test_replay_empty_rejected;
    Alcotest.test_case "fates_into n=0 consumes nothing" `Quick
      test_fates_into_n_zero_consumes_nothing;
    Alcotest.test_case "GE batch on nonuniform spans" `Quick
      test_ge_batch_mixed_spans;
    QCheck_alcotest.to_alcotest prop_ge_batch_vs_sequential;
    Alcotest.test_case "calibration round-trip" `Slow
      test_calibration_roundtrip;
    Alcotest.test_case "calibration degenerate traces" `Quick
      test_calibration_degenerate;
    Alcotest.test_case "asymmetric duplex directions" `Quick
      test_asymmetric_duplex_directions;
    Alcotest.test_case "asymmetric matches symmetric" `Quick
      test_asymmetric_matches_symmetric;
    Alcotest.test_case "golden replayed session" `Quick test_golden_replay;
  ]
