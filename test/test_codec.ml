(* Wire codec tests: roundtrips, size accounting, corruption
   classification. *)

let wire = Alcotest.testable Frame.Wire.pp (fun a b ->
    match (a, b) with
    | Frame.Wire.Data x, Frame.Wire.Data y -> Frame.Iframe.equal x y
    | Frame.Wire.Control x, Frame.Wire.Control y -> Frame.Cframe.equal x y
    | Frame.Wire.Hdlc_control x, Frame.Wire.Hdlc_control y -> Frame.Hframe.equal x y
    | _ -> false)

let roundtrip frame =
  match Frame.Codec.decode (Frame.Codec.encode frame) with
  | Ok f -> f
  | Error e -> Alcotest.failf "decode failed: %s" (Frame.Codec.error_to_string e)

let test_iframe_roundtrip () =
  let f = Frame.Wire.Data (Frame.Iframe.create ~seq:12345 ~payload:"hello world") in
  Alcotest.check wire "roundtrip" f (roundtrip f)

let test_iframe_empty_payload () =
  let f = Frame.Wire.Data (Frame.Iframe.create ~seq:0 ~payload:"") in
  Alcotest.check wire "roundtrip" f (roundtrip f)

let test_checkpoint_roundtrip () =
  let f =
    Frame.Wire.Control
      (Frame.Cframe.checkpoint ~cp_seq:42 ~issue_time:1.2345 ~stop_go:true
         ~enforced:false ~next_expected:99 ~naks:[ 3; 17; 64 ])
  in
  Alcotest.check wire "roundtrip" f (roundtrip f)

let test_enforced_empty_naks_roundtrip () =
  let f =
    Frame.Wire.Control
      (Frame.Cframe.checkpoint ~cp_seq:0 ~issue_time:0. ~stop_go:false
         ~enforced:true ~next_expected:0 ~naks:[])
  in
  Alcotest.check wire "roundtrip" f (roundtrip f)

let test_request_nak_roundtrip () =
  let f = Frame.Wire.Control (Frame.Cframe.request_nak ~issue_time:7.5) in
  Alcotest.check wire "roundtrip" f (roundtrip f)

let test_hdlc_roundtrips () =
  List.iter
    (fun kind ->
      let f = Frame.Wire.Hdlc_control (Frame.Hframe.create ~kind ~nr:77 ~pf:true) in
      Alcotest.check wire "roundtrip" f (roundtrip f))
    [ Frame.Hframe.Rr; Frame.Hframe.Rej; Frame.Hframe.Srej ]

let test_size_matches_encoding () =
  let frames =
    [
      Frame.Wire.Data (Frame.Iframe.create ~seq:1 ~payload:"abc");
      Frame.Wire.Control
        (Frame.Cframe.checkpoint ~cp_seq:1 ~issue_time:0.5 ~stop_go:false
           ~enforced:false ~next_expected:3 ~naks:[ 1; 2 ]);
      Frame.Wire.Control (Frame.Cframe.request_nak ~issue_time:0.1);
      Frame.Wire.Hdlc_control (Frame.Hframe.create ~kind:Frame.Hframe.Rr ~nr:0 ~pf:false);
    ]
  in
  List.iter
    (fun f ->
      Alcotest.(check int) "size_bytes = encoded length" (Frame.Wire.size_bytes f)
        (Bytes.length (Frame.Codec.encode f)))
    frames

let test_payload_corruption_identified () =
  let f = Frame.Wire.Data (Frame.Iframe.create ~seq:321 ~payload:"payload-data") in
  let b = Frame.Codec.encode f in
  (* flip a payload bit: payload starts at byte 9 *)
  Frame.Codec.flip_bit b (8 * 10);
  match Frame.Codec.decode b with
  | Error (Frame.Codec.Payload_corrupt { seq }) ->
      Alcotest.(check int) "seq recovered" 321 seq
  | other ->
      Alcotest.failf "expected Payload_corrupt, got %s"
        (match other with
        | Ok _ -> "Ok"
        | Error e -> Frame.Codec.error_to_string e)

let test_header_corruption_detected () =
  let f = Frame.Wire.Data (Frame.Iframe.create ~seq:321 ~payload:"payload") in
  let b = Frame.Codec.encode f in
  (* flip a bit in the seq field (bytes 1-4) *)
  Frame.Codec.flip_bit b 10;
  match Frame.Codec.decode b with
  | Error Frame.Codec.Header_corrupt -> ()
  | _ -> Alcotest.fail "expected Header_corrupt"

let test_control_corruption_detected () =
  let f =
    Frame.Wire.Control
      (Frame.Cframe.checkpoint ~cp_seq:1 ~issue_time:0.5 ~stop_go:false
         ~enforced:false ~next_expected:3 ~naks:[ 9 ])
  in
  let b = Frame.Codec.encode f in
  Frame.Codec.flip_bit b 20;
  match Frame.Codec.decode b with
  | Error Frame.Codec.Control_corrupt -> ()
  | _ -> Alcotest.fail "expected Control_corrupt"

let test_truncated () =
  let f = Frame.Wire.Data (Frame.Iframe.create ~seq:1 ~payload:"abcdef") in
  let b = Frame.Codec.encode f in
  let cut = Bytes.sub b 0 (Bytes.length b - 3) in
  match Frame.Codec.decode cut with
  | Error Frame.Codec.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated"

let test_unknown_tag () =
  let b = Bytes.make 8 '\255' in
  match Frame.Codec.decode b with
  | Error (Frame.Codec.Unknown_tag 0xff) -> ()
  | _ -> Alcotest.fail "expected Unknown_tag"

let test_empty_buffer () =
  match Frame.Codec.decode Bytes.empty with
  | Error Frame.Codec.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated"

let gen_frame =
  let open QCheck2.Gen in
  let payload = string_size ~gen:char (int_range 0 300) in
  let iframe =
    map2 (fun seq p -> Frame.Wire.Data (Frame.Iframe.create ~seq ~payload:p))
      (int_range 0 1_000_000) payload
  in
  let checkpoint =
    let* cp_seq = int_range 0 100_000 in
    let* issue_time = float_range 0. 1e6 in
    let* stop_go = bool in
    let* enforced = bool in
    let* next_expected = int_range 0 1_000_000 in
    let* naks = list_size (int_range 0 40) (int_range 0 1_000_000) in
    return
      (Frame.Wire.Control
         (Frame.Cframe.checkpoint ~cp_seq ~issue_time ~stop_go ~enforced
            ~next_expected ~naks))
  in
  let request = map (fun t -> Frame.Wire.Control (Frame.Cframe.request_nak ~issue_time:t))
      (float_range 0. 1e6) in
  let hdlc =
    map3 (fun k nr pf ->
        let kind = match k mod 3 with 0 -> Frame.Hframe.Rr | 1 -> Frame.Hframe.Rej | _ -> Frame.Hframe.Srej in
        Frame.Wire.Hdlc_control (Frame.Hframe.create ~kind ~nr ~pf))
      (int_range 0 2) (int_range 0 1_000_000) bool
  in
  oneof [ iframe; checkpoint; request; hdlc ]

let prop_roundtrip =
  QCheck2.Test.make ~name:"codec roundtrip for arbitrary frames" ~count:500
    gen_frame
    (fun f ->
      match Frame.Codec.decode (Frame.Codec.encode f) with
      | Ok f' -> (
          match (f, f') with
          | Frame.Wire.Data a, Frame.Wire.Data b -> Frame.Iframe.equal a b
          | Frame.Wire.Control a, Frame.Wire.Control b -> Frame.Cframe.equal a b
          | Frame.Wire.Hdlc_control a, Frame.Wire.Hdlc_control b ->
              Frame.Hframe.equal a b
          | _ -> false)
      | Error _ -> false)

let prop_any_single_flip_detected =
  QCheck2.Test.make ~name:"any single bit flip is detected (never silent)"
    ~count:500
    QCheck2.Gen.(pair gen_frame (int_range 0 100_000))
    (fun (f, bit_seed) ->
      let b = Frame.Codec.encode f in
      let bit = bit_seed mod (8 * Bytes.length b) in
      Frame.Codec.flip_bit b bit;
      match Frame.Codec.decode b with
      | Error _ -> true
      | Ok f' -> (
          (* flipping a bit inside the length field may produce a frame
             that still parses only if it equals the original — otherwise
             the flip went undetected *)
          match (f, f') with
          | Frame.Wire.Data a, Frame.Wire.Data b' -> Frame.Iframe.equal a b'
          | _ -> false))

let prop_flip_never_misidentifies_seq =
  QCheck2.Test.make
    ~name:"single-bit flip never mislabels Payload_corrupt with a wrong seq"
    ~count:500
    QCheck2.Gen.(
      triple (int_range 0 1_000_000)
        (string_size ~gen:char (int_range 1 300))
        (int_range 0 100_000))
    (fun (seq, payload, bit_seed) ->
      (* the LAMS receiver NAKs the seq reported by Payload_corrupt; a
         wrong seq there would make it NAK an innocent frame, so the
         header CRC must catch every header flip before the payload CRC
         gets to speak *)
      let f = Frame.Wire.Data (Frame.Iframe.create ~seq ~payload) in
      let b = Frame.Codec.encode f in
      let bit = bit_seed mod (8 * Bytes.length b) in
      Frame.Codec.flip_bit b bit;
      match Frame.Codec.decode b with
      | Error (Frame.Codec.Payload_corrupt { seq = reported }) ->
          reported = seq
      | Ok (Frame.Wire.Data f') ->
          Frame.Iframe.equal f' (Frame.Iframe.create ~seq ~payload)
      | Ok _ -> false
      | Error _ -> true)

let test_scratch_roundtrip () =
  (* one scratch serves frames of different kinds and sizes back to back *)
  let scratch = Frame.Codec.create_scratch ~capacity:8 () in
  let frames =
    [
      Frame.Wire.Data (Frame.Iframe.create ~seq:7 ~payload:(String.make 900 'q'));
      Frame.Wire.Control
        (Frame.Cframe.checkpoint ~cp_seq:3 ~issue_time:1.5 ~stop_go:false
           ~enforced:false ~next_expected:4 ~naks:[ 5; 9 ]);
      Frame.Wire.Data (Frame.Iframe.create ~seq:8 ~payload:"");
    ]
  in
  List.iter
    (fun f ->
      let buf, len = Frame.Codec.encode_scratch scratch f in
      Alcotest.(check int) "length" (Frame.Wire.size_bytes f) len;
      (match Frame.Codec.decode ~pos:0 ~len buf with
      | Ok f' -> Alcotest.check wire "scratch pair roundtrip" f f'
      | Error e -> Alcotest.failf "decode: %s" (Frame.Codec.error_to_string e));
      let len = Frame.Codec.encode_scratch_into scratch f in
      match
        Frame.Codec.decode ~pos:0 ~len (Frame.Codec.scratch_buffer scratch)
      with
      | Ok f' -> Alcotest.check wire "scratch_into roundtrip" f f'
      | Error e -> Alcotest.failf "decode: %s" (Frame.Codec.error_to_string e))
    frames

let test_scratch_encode_steady_state_allocates_nothing () =
  (* the line-rate contract: once the scratch has grown to the working
     frame size, [encode_scratch_into] allocates zero minor words *)
  let scratch = Frame.Codec.create_scratch () in
  let frame =
    Frame.Wire.Data (Frame.Iframe.create ~seq:42 ~payload:(String.make 1024 'x'))
  in
  ignore (Frame.Codec.encode_scratch_into scratch frame : int);
  ignore (Frame.Codec.encode_scratch_into scratch frame : int);
  let w0 = Gc.minor_words () in
  for _ = 1 to 100 do
    ignore (Frame.Codec.encode_scratch_into scratch frame : int)
  done;
  let per_call = (Gc.minor_words () -. w0) /. 100. in
  if per_call > 0.5 then
    Alcotest.failf "steady-state scratch encode allocates %.1f words/call"
      per_call

let prop_decode_never_raises =
  QCheck2.Test.make ~name:"decode total on arbitrary byte strings" ~count:1000
    QCheck2.Gen.(string_size ~gen:char (int_range 0 200))
    (fun s ->
      match Frame.Codec.decode (Bytes.of_string s) with
      | Ok _ | Error _ -> true)

let suite =
  [
    Alcotest.test_case "iframe roundtrip" `Quick test_iframe_roundtrip;
    Alcotest.test_case "iframe empty payload" `Quick test_iframe_empty_payload;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "enforced empty naks" `Quick test_enforced_empty_naks_roundtrip;
    Alcotest.test_case "request-nak roundtrip" `Quick test_request_nak_roundtrip;
    Alcotest.test_case "hdlc roundtrips" `Quick test_hdlc_roundtrips;
    Alcotest.test_case "size matches encoding" `Quick test_size_matches_encoding;
    Alcotest.test_case "payload corruption identified" `Quick test_payload_corruption_identified;
    Alcotest.test_case "header corruption detected" `Quick test_header_corruption_detected;
    Alcotest.test_case "control corruption detected" `Quick test_control_corruption_detected;
    Alcotest.test_case "truncated" `Quick test_truncated;
    Alcotest.test_case "unknown tag" `Quick test_unknown_tag;
    Alcotest.test_case "empty buffer" `Quick test_empty_buffer;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_any_single_flip_detected;
    QCheck_alcotest.to_alcotest prop_flip_never_misidentifies_seq;
    QCheck_alcotest.to_alcotest prop_decode_never_raises;
    Alcotest.test_case "scratch encode roundtrips" `Quick test_scratch_roundtrip;
    Alcotest.test_case "scratch encode steady state is allocation-free" `Quick
      test_scratch_encode_steady_state_allocates_nothing;
  ]
