(* Tests for the state-corruption subsystem and the convergence-mode
   oracle: script parsing, the mutator surface, per-class recovery paths
   (each corruption class must reconverge — or declare failure — under
   the protocol-matched oracle), the k = 0 tripwire, fault-observer
   composition, the golden corruption trace, and soak determinism across
   worker counts. *)

module E22 = Experiments.E22_corruption
module C = Dlc.Corrupt

(* --- corruption-script parsing ----------------------------------------- *)

let check_spec msg ~expect input =
  match C.of_string input with
  | Error e -> Alcotest.failf "%s: unexpected parse error: %s" msg e
  | Ok spec -> Alcotest.(check string) msg expect (C.describe (C.compile spec))

let check_rejected msg input =
  match C.of_string input with
  | Ok spec ->
      Alcotest.failf "%s: accepted as %s" msg (C.describe (C.compile spec))
  | Error _ -> ()

let test_script_parse () =
  check_spec "one rule"
    ~expect:"corrupt[at 0.005 nak-truncate]"
    "at 0.005 nak-truncate";
  check_spec "comments, args, copies and period"
    ~expect:
      "corrupt[at 0.004 seq-scramble-recv(delta=3); at 0.009 every 0.002 x2 \
       reverse-replay(copies=1,back=1)]"
    "# a comment\n\
     at 0.004 seq-scramble-recv delta=3\n\
     \n\
     at 0.009 every 0.002 copies 2 reverse-replay back=1\n";
  check_spec "carryover rule"
    ~expect:"corrupt[at 0 carryover-stale(drop=1,flip=true)]"
    "at 0. carryover-stale drop=1 flip=true";
  check_spec "adversary line"
    ~expect:
      "corrupt-adversary[seed=9 in [0.002,0.05) gap=0.008 \
       classes=nak-truncate,buffer-duplicate]"
    "adversary seed=9 start=0.002 stop=0.05 mean-gap=0.008 \
     classes=nak-truncate,buffer-duplicate"

let test_script_rejects () =
  check_rejected "unknown class" "at 0.005 frobnicate";
  check_rejected "malformed copies" "at 0.009 copies=2 reverse-replay";
  check_rejected "adversary missing seed"
    "adversary start=0. stop=0.1 mean-gap=0.01 classes=nak-truncate";
  check_rejected "adversary mixed with rules"
    "at 0.005 nak-truncate\n\
     adversary seed=1 start=0. stop=0.1 mean-gap=0.01 classes=nak-truncate"

(* --- the mutator surface ------------------------------------------------ *)

let fresh_lams () =
  let engine = Sim.Engine.create () in
  let duplex =
    Channel.Duplex.create_static engine
      ~rng:(Sim.Rng.create ~seed:1)
      ~distance_m:150_000. ~data_rate_bps:100e6
      ~iframe_error:(Channel.Error_model.uniform ~ber:0. ())
      ~cframe_error:(Channel.Error_model.uniform ~ber:0. ())
  in
  let session =
    Lams_dlc.Session.create engine ~params:Lams_dlc.Params.default ~duplex
  in
  Lams_dlc.Session.corrupt_surface session

let test_surface_idle_session () =
  (* before any traffic the injection points that need captured state or
     buffered frames must refuse (None), not fabricate state *)
  let s = fresh_lams () in
  Alcotest.(check (option string))
    "reverse replay with an empty ring refuses" None
    (s.C.replay_reverse ~copies:2 ~back:1);
  Alcotest.(check (option string))
    "duplicating an empty send buffer refuses" None
    (s.C.duplicate_buffer_entry ());
  Alcotest.(check bool)
    "send-seq scramble applies on a live sender" true
    (s.C.scramble_send_seq ~delta:5 <> None);
  Alcotest.(check bool)
    "recv frontier scramble applies" true
    (s.C.scramble_recv_seq ~delta:3 <> None)

let test_null_surface () =
  let n = C.null_surface in
  Alcotest.(check (option string)) "null scramble" None
    (n.C.scramble_send_seq ~delta:1);
  Alcotest.(check (option string)) "null truncate" None
    (n.C.truncate_nak_ledger ());
  Alcotest.(check (option string)) "null replay" None
    (n.C.replay_reverse ~copies:1 ~back:0)

(* --- per-class recovery paths ------------------------------------------- *)

(* Each corruption class, injected once mid-stream with canonical
   arguments, must leave the oracle clean: anomalies confined to the
   suspect window, invariants re-established within k checkpoints (or an
   explicit failure declaration — which none of the canonical classes
   needs on this geometry). Seed-pinned, so the per-class expectations
   below are exact. *)
let recovery ?(variant = E22.Lams) ?(seed = 11) ?(completed = true) name =
  let klass = List.assoc name E22.classes in
  let o = E22.run_one ~seed variant (E22.spec_of klass) in
  Alcotest.(check int) (name ^ ": injected once") 1 o.E22.injected;
  Alcotest.(check int) (name ^ ": nothing skipped") 0 o.E22.skipped;
  Alcotest.(check bool) (name ^ ": oracle clean") true (o.E22.violations = []);
  Alcotest.(check bool) (name ^ ": not stuck unconverged") false
    o.E22.unconverged;
  Alcotest.(check int) (name ^ ": suspect window closed") 1 o.E22.converged;
  Alcotest.(check bool)
    (name ^ ": stream " ^ (if completed then "completed" else "has casualties"))
    completed o.E22.completed;
  o

let test_recovery_seq_scramble_send () =
  (* the phantom gap is NAKed and resolved without observable anomaly:
     renumbered retransmission fills it like any real loss *)
  let o = recovery "seq-scramble-send" in
  Alcotest.(check int) "no anomalies needed" 0 o.E22.tolerated

let test_recovery_seq_scramble_recv () =
  (* the frontier jump forward silently skips in-flight frames: those
     are casualties in Dolev et al.'s sense — destroyed data is a
     legitimate price of stabilisation, so the stream cannot complete,
     but the oracle must still end clean *)
  let o = recovery ~completed:false "seq-scramble-recv" in
  Alcotest.(check bool) "no failure declaration" false o.E22.declared_failure;
  Alcotest.(check bool) "only the skipped frames are lost" true
    (o.E22.delivered >= 396)

let test_recovery_nak_poison () =
  (* phantom NAKs ask for retransmission of delivered frames; the
     duplicates are absorbed, cumulation stays legal *)
  let o = recovery "nak-poison" in
  Alcotest.(check int) "no anomalies needed" 0 o.E22.tolerated

let test_recovery_nak_truncate () =
  (* the erased ledger under-advertises pending losses: exactly the
     nak-underrun post-mortem anomaly, attributed to the injection *)
  let o = recovery "nak-truncate" in
  Alcotest.(check int) "one tolerated anomaly" 1 o.E22.tolerated

let test_recovery_buffer_duplicate () =
  (* the duplicated entry arrives as a duplicate delivery inside the
     window; convergence time is the anomaly's distance from injection *)
  let o = recovery "buffer-duplicate" in
  Alcotest.(check bool) "anomaly observed in window" true
    (o.E22.tolerated >= 1);
  Alcotest.(check bool) "positive time-to-convergence" true
    (o.E22.time_to_convergence > 0.)

let test_recovery_reverse_replay () =
  (* stale checkpoints regress cp_seq and next_expected on the wire —
     multiple tolerated anomalies, all inside the window *)
  let o = recovery "reverse-replay" in
  Alcotest.(check bool) "replayed frames are anomalous" true
    (o.E22.tolerated >= 2)

let test_recovery_other_variants () =
  (* the same contract holds for the comparison protocols; the recv
     frontier jump destroys in-flight frames on every variant *)
  List.iter
    (fun (variant, completed, name) ->
      ignore (recovery ~variant ~completed name : E22.outcome))
    [
      (E22.Sr_hdlc, true, "seq-scramble-send");
      (E22.Sr_hdlc, true, "reverse-replay");
      (E22.Nbdt_bulk, false, "seq-scramble-recv");
      (E22.Nbdt_bulk, true, "nak-poison");
    ]

(* --- the k = 0 tripwire ------------------------------------------------- *)

let test_tripwire_k0 () =
  (* with a zero checkpoint budget no suspect window ever opens: the
     same injection whose anomalies are tolerated at k = 8 must trip the
     oracle as real violations *)
  let klass = List.assoc "reverse-replay" E22.classes in
  let o = E22.run_one ~k:0 ~seed:11 E22.Lams (E22.spec_of klass) in
  Alcotest.(check int) "injected once" 1 o.E22.injected;
  Alcotest.(check bool) "oracle trips" true (List.length o.E22.violations >= 2);
  Alcotest.(check int) "nothing tolerated" 0 o.E22.tolerated;
  Alcotest.(check int) "no window, no convergence" 0 o.E22.converged

(* --- fault observers compose -------------------------------------------- *)

let test_fault_observers_compose () =
  let fault = Channel.Fault.of_rules [ Channel.Fault.rule Any_iframe Drop ] in
  let calls = ref [] in
  Channel.Fault.set_observer fault (fun ~now:_ _ _ -> calls := 1 :: !calls);
  Channel.Fault.set_observer fault (fun ~now:_ _ _ -> calls := 2 :: !calls);
  let frame = Frame.Wire.Data (Frame.Iframe.create ~seq:0 ~payload:"p") in
  (match Channel.Fault.decision fault ~now:0. frame with
  | Channel.Link.Drop -> ()
  | _ -> Alcotest.fail "rule did not drop");
  Alcotest.(check (list int))
    "both observers fired, in registration order" [ 1; 2 ] (List.rev !calls)

(* --- handover carryover corruption -------------------------------------- *)

let test_handover_carryover () =
  let o = E22.run_handover ~seed:11 E22.carryover_spec in
  Alcotest.(check int) "snapshot corrupted once" 1 o.E22.h_injected;
  Alcotest.(check bool) "transfer oracle clean" true (o.E22.h_violations = []);
  Alcotest.(check bool) "reconverged" false o.E22.h_unconverged;
  Alcotest.(check int) "all messages reassembled" 10 o.E22.messages_completed;
  Alcotest.(check bool) "anomalies stayed in the window" true
    (o.E22.h_tolerated > 0)

(* --- golden corruption trace -------------------------------------------- *)

(* dune runtest runs in _build/default/test where the deps glob places
   data/; fall back to the source tree for dune exec from the root *)
let golden_path =
  if Sys.file_exists "data/corrupt-golden.jsonl" then
    "data/corrupt-golden.jsonl"
  else "test/data/corrupt-golden.jsonl"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* the canonical corruption scenario behind the golden:
   `corrupt run lams --class reverse-replay --seed 7 --frames 200` *)
let regenerate_golden () =
  let recorder = Trace.Recorder.create ~name:"corrupt-golden.jsonl" () in
  let buf = Buffer.create 65536 in
  Trace.Recorder.set_sink recorder (fun e ->
      Buffer.add_string buf (Trace.Event.to_line e);
      Buffer.add_char buf '\n');
  let klass = List.assoc "reverse-replay" E22.classes in
  let o =
    E22.run_one ~recorder ~frames:200 ~seed:7 E22.Lams (E22.spec_of klass)
  in
  Alcotest.(check bool) "golden scenario is clean" true (o.E22.violations = []);
  ( Buffer.contents buf,
    Bench_report.Json.to_string ~indent:2
      (Trace.Metrics.to_json (Trace.Recorder.metrics recorder))
    ^ "\n" )

let test_golden_trace () =
  let trace, metrics = regenerate_golden () in
  (match Trace.Schema.validate trace with
  | Ok n -> Alcotest.(check bool) "events recorded" true (n > 100)
  | Error e -> Alcotest.failf "regenerated trace breaks the schema: %s" e);
  Alcotest.(check string)
    "trace is byte-identical to the checked-in golden"
    (read_file golden_path) trace;
  Alcotest.(check string)
    "metrics sidecar matches too"
    (read_file (golden_path ^ ".metrics.json"))
    metrics

(* --- soak determinism across worker counts ------------------------------ *)

let test_soak_jobs_determinism () =
  let json report =
    Bench_report.Json.to_string ~indent:2
      (Bench_report.Matrix_report.to_json ~with_meta:false report)
  in
  let seq = E22.soak ~jobs:1 ~root_seed:7 ~schedules:3 () in
  let par = E22.soak ~jobs:2 ~root_seed:7 ~schedules:3 () in
  Alcotest.(check string)
    "parallel soak is byte-identical to sequential" (json seq) (json par);
  List.iter
    (fun (e : Bench_report.Matrix_report.experiment) ->
      List.iter
        (fun (p : Bench_report.Matrix_report.point) ->
          match List.assoc_opt "oracle_violations" p.metrics with
          | Some s ->
              Alcotest.(check (float 0.))
                (p.label ^ ": no oracle violations")
                0. s.Bench_report.Matrix_report.max
          | None -> Alcotest.failf "%s: oracle_violations missing" p.label)
        e.Bench_report.Matrix_report.points)
    seq.Bench_report.Matrix_report.experiments

let suite =
  [
    Alcotest.test_case "script: parse and describe" `Quick test_script_parse;
    Alcotest.test_case "script: malformed inputs rejected" `Quick
      test_script_rejects;
    Alcotest.test_case "surface: idle-session refusals" `Quick
      test_surface_idle_session;
    Alcotest.test_case "surface: null surface refuses all" `Quick
      test_null_surface;
    Alcotest.test_case "recovery: seq-scramble-send" `Quick
      test_recovery_seq_scramble_send;
    Alcotest.test_case "recovery: seq-scramble-recv" `Quick
      test_recovery_seq_scramble_recv;
    Alcotest.test_case "recovery: nak-poison" `Quick test_recovery_nak_poison;
    Alcotest.test_case "recovery: nak-truncate" `Quick
      test_recovery_nak_truncate;
    Alcotest.test_case "recovery: buffer-duplicate" `Quick
      test_recovery_buffer_duplicate;
    Alcotest.test_case "recovery: reverse-replay" `Quick
      test_recovery_reverse_replay;
    Alcotest.test_case "recovery: hdlc and nbdt variants" `Quick
      test_recovery_other_variants;
    Alcotest.test_case "tripwire: k = 0 turns anomalies into violations"
      `Quick test_tripwire_k0;
    Alcotest.test_case "fault observers compose" `Quick
      test_fault_observers_compose;
    Alcotest.test_case "handover: stale carryover converges" `Quick
      test_handover_carryover;
    Alcotest.test_case "golden corruption trace" `Quick test_golden_trace;
    Alcotest.test_case "soak: jobs-count determinism" `Quick
      test_soak_jobs_determinism;
  ]
