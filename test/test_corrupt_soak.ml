(* QCheck soak: random corruption scripts fired into mid-handover
   transfers. The self-stabilisation contract under fuzzing is
   convergence-or-declared-failure — whatever state the adversary
   scrambles, the cross-handover transfer oracle must end with zero real
   violations (anomalies confined to suspect windows, destroyed
   carryover entries on the casualty ledger, and failure declarations
   are a legitimate outcome). Seed-pinned: the QCheck generator runs
   under a fixed [Random.State] and each generated script derives its
   simulation seed from its own stable description, so every replica of
   this suite exercises the identical runs. *)

module E22 = Experiments.E22_corruption
module C = Dlc.Corrupt

(* Injection times cover the first two contact windows (0–0.025 s and
   0.035–0.060 s) plus the gap between them: corruption lands on live
   traffic, on an idle link, and right around the handover cut. *)
let gen_klass =
  let open QCheck2.Gen in
  oneof
    [
      ( int_range 1 6 >|= fun delta ->
        C.Seq_scramble { side = C.Send; delta } );
      ( int_range 1 4 >|= fun delta ->
        C.Seq_scramble { side = C.Recv; delta } );
      ( int_range 1 4 >|= fun n ->
        C.Nak_poison { seqs = List.init n (fun i -> i + 1) } );
      return C.Nak_truncate;
      return C.Buffer_duplicate;
      ( pair (int_range 0 2) bool >|= fun (drop, flip) ->
        C.Carryover_stale { drop; flip } );
      ( pair (int_range 1 3) (int_range 0 3) >|= fun (copies, back) ->
        C.Reverse_replay { copies; back } );
    ]

let gen_script =
  let open QCheck2.Gen in
  list_size (int_range 1 4)
    (pair (float_range 0.001 0.09) gen_klass)

let spec_of_script rules =
  C.Rules (List.map (fun (at, klass) -> C.rule ~at klass) rules)

let print_script rules =
  C.describe (C.compile (spec_of_script rules))

let prop_converge_or_declare =
  QCheck2.Test.make ~name:"mid-handover corruption: converge or declare"
    ~count:20 ~print:print_script gen_script (fun rules ->
      let spec = spec_of_script rules in
      let seed =
        Sim.Rng.derive_seed ~root:0xE22 [ C.describe (C.compile spec) ]
      in
      let o = E22.run_handover ~seed spec in
      (* convergence or an explicit declaration — but never a real
         oracle violation, and never a window left open at the end *)
      o.E22.h_violations = [] && not o.E22.h_unconverged)

(* The soak's own adversary derivation must be stable: the CI soak's
   byte-equality across --jobs depends on every schedule being a pure
   function of the root seed. *)
let test_soak_spec_derivation () =
  let d seed = C.describe (C.compile (E22.soak_spec ~seed)) in
  Alcotest.(check string) "same seed, same schedule" (d 7) (d 7);
  Alcotest.(check bool) "different seeds diverge" true (d 7 <> d 8)

let suite =
  [
    QCheck_alcotest.to_alcotest ~speed_level:`Quick
      ~rand:(Random.State.make [| 0x5AB1E; 0xE22 |])
      prop_converge_or_declare;
    Alcotest.test_case "soak schedules derive from the root seed" `Quick
      test_soak_spec_derivation;
  ]
