(* CRC known-answer and error-detection tests. *)

let test_crc16_check_value () =
  (* CRC-16/CCITT-FALSE("123456789") = 0x29B1 *)
  Alcotest.(check int) "check vector" 0x29B1 (Frame.Crc.crc16_string "123456789")

let test_crc32_check_value () =
  (* CRC-32/IEEE("123456789") = 0xCBF43926 *)
  Alcotest.(check int32) "check vector" 0xCBF43926l
    (Frame.Crc.crc32_string "123456789")

let test_crc16_empty () =
  Alcotest.(check int) "empty = init" 0xFFFF (Frame.Crc.crc16_string "")

let test_crc32_empty () =
  Alcotest.(check int32) "empty" 0l (Frame.Crc.crc32_string "")

let test_crc16_slice () =
  let b = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int) "slice" 0x29B1 (Frame.Crc.crc16 b ~pos:2 ~len:9)

let test_crc32_chaining () =
  let whole = Frame.Crc.crc32_string "123456789" in
  let b = Bytes.of_string "123456789" in
  let first = Frame.Crc.crc32 b ~pos:0 ~len:4 in
  let second = Frame.Crc.crc32 ~init:first b ~pos:4 ~len:5 in
  Alcotest.(check int32) "chained = whole" whole second

let test_out_of_bounds () =
  let b = Bytes.create 4 in
  Alcotest.check_raises "crc16 oob" (Invalid_argument "Crc.crc16: slice out of bounds")
    (fun () -> ignore (Frame.Crc.crc16 b ~pos:2 ~len:3));
  Alcotest.check_raises "crc32 oob" (Invalid_argument "Crc.crc32: slice out of bounds")
    (fun () -> ignore (Frame.Crc.crc32 b ~pos:0 ~len:5))

let gen_payload = QCheck2.Gen.(string_size ~gen:char (int_range 1 200))

let prop_crc16_detects_single_bit_flip =
  QCheck2.Test.make ~name:"crc16 detects any single-bit flip" ~count:300
    QCheck2.Gen.(pair gen_payload (int_range 0 10_000))
    (fun (s, bit_seed) ->
      let b = Bytes.of_string s in
      let before = Frame.Crc.crc16 b ~pos:0 ~len:(Bytes.length b) in
      let bit = bit_seed mod (8 * Bytes.length b) in
      Frame.Codec.flip_bit b bit;
      let after = Frame.Crc.crc16 b ~pos:0 ~len:(Bytes.length b) in
      before <> after)

let prop_crc32_detects_single_bit_flip =
  QCheck2.Test.make ~name:"crc32 detects any single-bit flip" ~count:300
    QCheck2.Gen.(pair gen_payload (int_range 0 10_000))
    (fun (s, bit_seed) ->
      let b = Bytes.of_string s in
      let before = Frame.Crc.crc32 b ~pos:0 ~len:(Bytes.length b) in
      let bit = bit_seed mod (8 * Bytes.length b) in
      Frame.Codec.flip_bit b bit;
      let after = Frame.Crc.crc32 b ~pos:0 ~len:(Bytes.length b) in
      before <> after)

let prop_crc16_detects_double_bit_flip =
  (* CCITT-FALSE detects all 2-bit errors within its 32751-bit design
     block length; every frame in this codebase is far shorter *)
  QCheck2.Test.make ~name:"crc16 detects any double-bit flip" ~count:300
    QCheck2.Gen.(triple gen_payload (int_range 0 10_000) (int_range 1 10_000))
    (fun (s, seed_a, seed_b) ->
      let b = Bytes.of_string s in
      let bits = 8 * Bytes.length b in
      let i = seed_a mod bits in
      let j = (i + 1 + (seed_b mod (bits - 1))) mod bits in
      QCheck2.assume (i <> j);
      let before = Frame.Crc.crc16 b ~pos:0 ~len:(Bytes.length b) in
      Frame.Codec.flip_bit b i;
      Frame.Codec.flip_bit b j;
      let after = Frame.Crc.crc16 b ~pos:0 ~len:(Bytes.length b) in
      before <> after)

let prop_crc_deterministic =
  QCheck2.Test.make ~name:"crc is a pure function" ~count:200 gen_payload
    (fun s -> Frame.Crc.crc16_string s = Frame.Crc.crc16_string s
              && Frame.Crc.crc32_string s = Frame.Crc.crc32_string s)

let suite =
  [
    Alcotest.test_case "crc16 check value" `Quick test_crc16_check_value;
    Alcotest.test_case "crc32 check value" `Quick test_crc32_check_value;
    Alcotest.test_case "crc16 empty" `Quick test_crc16_empty;
    Alcotest.test_case "crc32 empty" `Quick test_crc32_empty;
    Alcotest.test_case "crc16 slice" `Quick test_crc16_slice;
    Alcotest.test_case "crc32 chaining" `Quick test_crc32_chaining;
    Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
    QCheck_alcotest.to_alcotest prop_crc16_detects_single_bit_flip;
    QCheck_alcotest.to_alcotest prop_crc32_detects_single_bit_flip;
    QCheck_alcotest.to_alcotest prop_crc16_detects_double_bit_flip;
    QCheck_alcotest.to_alcotest prop_crc_deterministic;
  ]
