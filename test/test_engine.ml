(* Tests for the simulation engine and the restartable timer. *)

let test_clock_advances () =
  let e = Sim.Engine.create () in
  let seen = ref [] in
  ignore (Sim.Engine.schedule e ~delay:2. (fun () -> seen := 2 :: !seen));
  ignore (Sim.Engine.schedule e ~delay:1. (fun () -> seen := 1 :: !seen));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "order" [ 2; 1 ] !seen;
  Alcotest.(check (float 1e-9)) "clock at last event" 2. (Sim.Engine.now e)

let test_schedule_inside_event () =
  let e = Sim.Engine.create () in
  let fired = ref 0. in
  ignore
    (Sim.Engine.schedule e ~delay:1. (fun () ->
         ignore (Sim.Engine.schedule e ~delay:0.5 (fun () -> fired := Sim.Engine.now e))));
  Sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "nested schedule" 1.5 !fired

let test_negative_delay_rejected () =
  let e = Sim.Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay -5") (fun () ->
      ignore (Sim.Engine.schedule e ~delay:(-5.) (fun () -> ())));
  ignore (Sim.Engine.schedule e ~delay:0. (fun () -> ()));
  Sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "zero delay fires now" 0. (Sim.Engine.now e)

let test_schedule_at_past_rejected () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:5. (fun () -> ()));
  Sim.Engine.run e;
  Alcotest.check_raises "past time" (Invalid_argument
    "Engine.schedule_at: time 1 is before now 5")
    (fun () -> ignore (Sim.Engine.schedule_at e ~time:1. (fun () -> ())))

let test_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let id = Sim.Engine.schedule e ~delay:1. (fun () -> fired := true) in
  Alcotest.(check bool) "cancel ok" true (Sim.Engine.cancel e id);
  Sim.Engine.run e;
  Alcotest.(check bool) "did not fire" false !fired

let test_run_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Sim.Engine.run e ~until:5.5;
  Alcotest.(check int) "five fired" 5 !count;
  Alcotest.(check (float 1e-9)) "clock at until" 5.5 (Sim.Engine.now e);
  Alcotest.(check int) "five pending" 5 (Sim.Engine.pending e);
  Sim.Engine.run e;
  Alcotest.(check int) "all fired" 10 !count

let test_max_events () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let rec loop () =
    incr count;
    ignore (Sim.Engine.schedule e ~delay:1. loop)
  in
  ignore (Sim.Engine.schedule e ~delay:1. loop);
  Sim.Engine.run e ~max_events:100;
  Alcotest.(check int) "bounded" 100 !count

let test_step () =
  let e = Sim.Engine.create () in
  Alcotest.(check bool) "empty step" false (Sim.Engine.step e);
  ignore (Sim.Engine.schedule e ~delay:1. (fun () -> ()));
  Alcotest.(check bool) "one step" true (Sim.Engine.step e);
  Alcotest.(check bool) "drained" false (Sim.Engine.step e)

(* --- Timer --- *)

let test_timer_fires () =
  let e = Sim.Engine.create () in
  let fired = ref nan in
  let tm = Sim.Timer.create e ~duration:2. ~on_expire:(fun () -> fired := Sim.Engine.now e) in
  Sim.Timer.start tm;
  Sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "fires at duration" 2. !fired

let test_timer_stop () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let tm = Sim.Timer.create e ~duration:2. ~on_expire:(fun () -> fired := true) in
  Sim.Timer.start tm;
  ignore (Sim.Engine.schedule e ~delay:1. (fun () -> Sim.Timer.stop tm));
  Sim.Engine.run e;
  Alcotest.(check bool) "stopped timer silent" false !fired;
  Alcotest.(check bool) "not running" false (Sim.Timer.is_running tm)

let test_timer_reset_extends () =
  let e = Sim.Engine.create () in
  let fired = ref nan in
  let tm = Sim.Timer.create e ~duration:2. ~on_expire:(fun () -> fired := Sim.Engine.now e) in
  Sim.Timer.start tm;
  ignore (Sim.Engine.schedule e ~delay:1.5 (fun () -> Sim.Timer.reset tm));
  Sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "fires after reset" 3.5 !fired

let test_timer_restart_after_fire () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let tm = Sim.Timer.create e ~duration:1. ~on_expire:(fun () -> incr count) in
  Sim.Timer.start tm;
  ignore (Sim.Engine.schedule e ~delay:2. (fun () -> Sim.Timer.start tm));
  Sim.Engine.run e;
  Alcotest.(check int) "fired twice" 2 !count

let test_timer_remaining () =
  let e = Sim.Engine.create () in
  let tm = Sim.Timer.create e ~duration:4. ~on_expire:(fun () -> ()) in
  Alcotest.(check (option (float 1e-9))) "stopped: none" None (Sim.Timer.remaining tm);
  Sim.Timer.start tm;
  ignore
    (Sim.Engine.schedule e ~delay:1. (fun () ->
         match Sim.Timer.remaining tm with
         | Some r -> Alcotest.(check (float 1e-9)) "remaining 3" 3. r
         | None -> Alcotest.fail "timer should be running"));
  Sim.Engine.run e

let test_timer_set_duration () =
  let e = Sim.Engine.create () in
  let fired = ref nan in
  let tm = Sim.Timer.create e ~duration:2. ~on_expire:(fun () -> fired := Sim.Engine.now e) in
  Sim.Timer.set_duration tm 0.5;
  Sim.Timer.start tm;
  Sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "new duration used" 0.5 !fired

let prop_callbacks_fire_in_time_order =
  QCheck2.Test.make ~name:"engine fires callbacks in nondecreasing time order"
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 100) (float_range 0. 50.))
    (fun delays ->
      let e = Sim.Engine.create () in
      let fired = ref [] in
      List.iter
        (fun d ->
          ignore
            (Sim.Engine.schedule e ~delay:d (fun () ->
                 fired := Sim.Engine.now e :: !fired)))
        delays;
      Sim.Engine.run e;
      let times = List.rev !fired in
      List.length times = List.length delays
      &&
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono times)

let prop_cancelled_never_fire_rest_all_fire =
  QCheck2.Test.make ~name:"cancellation is exact under random interleaving"
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 80) (pair (float_range 0. 20.) bool))
    (fun entries ->
      let e = Sim.Engine.create () in
      let fired = ref 0 in
      let ids =
        List.map
          (fun (d, cancel) ->
            (Sim.Engine.schedule e ~delay:d (fun () -> incr fired), cancel))
          entries
      in
      let cancelled =
        List.fold_left
          (fun acc (id, cancel) ->
            if cancel && Sim.Engine.cancel e id then acc + 1 else acc)
          0 ids
      in
      Sim.Engine.run e;
      !fired = List.length entries - cancelled)

let suite =
  [
    Alcotest.test_case "clock advances" `Quick test_clock_advances;
    QCheck_alcotest.to_alcotest prop_callbacks_fire_in_time_order;
    QCheck_alcotest.to_alcotest prop_cancelled_never_fire_rest_all_fire;
    Alcotest.test_case "nested schedule" `Quick test_schedule_inside_event;
    Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
    Alcotest.test_case "schedule_at past rejected" `Quick test_schedule_at_past_rejected;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "max events" `Quick test_max_events;
    Alcotest.test_case "step" `Quick test_step;
    Alcotest.test_case "timer fires" `Quick test_timer_fires;
    Alcotest.test_case "timer stop" `Quick test_timer_stop;
    Alcotest.test_case "timer reset extends" `Quick test_timer_reset_extends;
    Alcotest.test_case "timer restart after fire" `Quick test_timer_restart_after_fire;
    Alcotest.test_case "timer remaining" `Quick test_timer_remaining;
    Alcotest.test_case "timer set_duration" `Quick test_timer_set_duration;
  ]
