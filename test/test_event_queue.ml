(* Tests for the simulation event queue: ordering, tie-breaking,
   cancellation. *)

let test_pop_order () =
  let q = Sim.Event_queue.create ~dummy:"" () in
  ignore (Sim.Event_queue.add q ~time:3. "c");
  ignore (Sim.Event_queue.add q ~time:1. "a");
  ignore (Sim.Event_queue.add q ~time:2. "b");
  let pop () =
    match Sim.Event_queue.pop q with
    | Some (_, v) -> v
    | None -> Alcotest.fail "queue empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "drained" true (Sim.Event_queue.pop q = None)


let test_tie_break_fifo () =
  let q = Sim.Event_queue.create ~dummy:(-1) () in
  for i = 0 to 9 do
    ignore (Sim.Event_queue.add q ~time:5. i)
  done;
  for i = 0 to 9 do
    match Sim.Event_queue.pop q with
    | Some (_, v) -> Alcotest.(check int) "insertion order" i v
    | None -> Alcotest.fail "queue empty"
  done

let test_cancel () =
  let q = Sim.Event_queue.create ~dummy:"" () in
  let id1 = Sim.Event_queue.add q ~time:1. "a" in
  let _id2 = Sim.Event_queue.add q ~time:2. "b" in
  Alcotest.(check bool) "cancel pending" true (Sim.Event_queue.cancel q id1);
  Alcotest.(check bool) "double cancel fails" false (Sim.Event_queue.cancel q id1);
  (match Sim.Event_queue.pop q with
  | Some (_, v) -> Alcotest.(check string) "skips cancelled" "b" v
  | None -> Alcotest.fail "queue empty");
  Alcotest.(check bool) "cancel after fire fails" false
    (Sim.Event_queue.cancel q id1)

let test_length_tracks_live () =
  let q = Sim.Event_queue.create ~dummy:() () in
  let id = Sim.Event_queue.add q ~time:1. () in
  ignore (Sim.Event_queue.add q ~time:2. ());
  Alcotest.(check int) "two live" 2 (Sim.Event_queue.length q);
  ignore (Sim.Event_queue.cancel q id : bool);
  Alcotest.(check int) "one live after cancel" 1 (Sim.Event_queue.length q);
  ignore (Sim.Event_queue.pop q);
  Alcotest.(check int) "zero after pop" 0 (Sim.Event_queue.length q);
  Alcotest.(check bool) "is_empty" true (Sim.Event_queue.is_empty q)

let test_peek_time_skips_cancelled () =
  let q = Sim.Event_queue.create ~dummy:() () in
  let id = Sim.Event_queue.add q ~time:1. () in
  ignore (Sim.Event_queue.add q ~time:5. ());
  ignore (Sim.Event_queue.cancel q id : bool);
  Alcotest.(check (option (float 1e-9))) "peek is 5" (Some 5.)
    (Sim.Event_queue.peek_time q)

let prop_pop_sorted =
  QCheck2.Test.make ~name:"event queue pops in nondecreasing time order"
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 200) (float_range 0. 1000.))
    (fun times ->
      let q = Sim.Event_queue.create ~dummy:() () in
      List.iter (fun time -> ignore (Sim.Event_queue.add q ~time ())) times;
      let rec drain last =
        match Sim.Event_queue.pop q with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain neg_infinity)

let prop_cancel_removes =
  QCheck2.Test.make ~name:"cancelled events never pop" ~count:200
    QCheck2.Gen.(list_size (int_range 1 100) (pair (float_range 0. 100.) bool))
    (fun entries ->
      let q = Sim.Event_queue.create ~dummy:0 () in
      let ids =
        List.map
          (fun (time, cancel) -> (Sim.Event_queue.add q ~time ~-1, cancel))
          entries
      in
      let cancelled =
        List.filter_map
          (fun (id, cancel) ->
            if cancel then begin
              ignore (Sim.Event_queue.cancel q id : bool);
              Some id
            end
            else None)
          ids
      in
      let expected = List.length entries - List.length cancelled in
      let rec count acc =
        match Sim.Event_queue.pop q with
        | None -> acc
        | Some _ -> count (acc + 1)
      in
      count 0 = expected)

(* Vacated slots (popped, cancelled, or left behind by arena growth)
   must not pin payloads: every slot is reset to the queue's dummy, so
   once the caller drops its own reference the payload is collectable.
   The old heap kept entries in slots beyond [size] (and in the old
   array after growth) for the life of the queue — this test fails on
   that implementation. *)
let test_vacated_slots_release_payloads () =
  let q = Sim.Event_queue.create ~capacity:16 ~dummy:"" () in
  let n = 64 in
  let w = Weak.create n in
  for i = 0 to n - 1 do
    (* fresh heap-allocated payloads so Weak can track their liveness;
       n > capacity forces arena growth along the way *)
    let payload = String.make 16 (Char.chr (65 + (i mod 26))) in
    Weak.set w i (Some payload);
    let id = Sim.Event_queue.add q ~time:(float_of_int i) payload in
    if i mod 3 = 0 then ignore (Sim.Event_queue.cancel q id : bool)
  done;
  let rec drain () =
    match Sim.Event_queue.pop q with Some _ -> drain () | None -> ()
  in
  drain ();
  Gc.full_major ();
  let alive = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check w i then incr alive
  done;
  Alcotest.(check int) "payloads retained after pop/cancel" 0 !alive

let test_pop_run_clock_and_stops () =
  let q = Sim.Event_queue.create ~dummy:0 () in
  let clock = [| 0. |] in
  ignore (Sim.Event_queue.add_after q ~clock ~delay:1. ~aux:7 1);
  ignore (Sim.Event_queue.add_after q ~clock ~delay:2. ~aux:0 2);
  ignore (Sim.Event_queue.add q ~time:3. 3);
  let seen = ref [] in
  let k v aux = seen := (v, aux, clock.(0)) :: !seen in
  let stop = Sim.Event_queue.pop_run q ~clock ~until:2.5 ~max_events:10 ~k in
  Alcotest.(check bool) "deferred past until" true
    (stop = Sim.Event_queue.Deferred);
  Alcotest.(check (list (triple int int (float 1e-9))))
    "events, aux words and clock writes"
    [ (1, 7, 1.); (2, 0, 2.) ]
    (List.rev !seen);
  seen := [];
  let stop = Sim.Event_queue.pop_run q ~clock ~until:10. ~max_events:10 ~k in
  Alcotest.(check bool) "drained" true (stop = Sim.Event_queue.Drained);
  Alcotest.(check (list (triple int int (float 1e-9))))
    "remaining event" [ (3, 0, 3.) ] (List.rev !seen)

(* Model-based differential test: the arena/wheel/overflow queue against
   a sorted association list over random add/cancel/pop/peek
   interleavings. The reference pops in exact (time, insertion) order —
   the same contract as the plain 4-ary heap this structure replaced —
   so this also pins that the tie-break order is unchanged. Time
   generation mixes sub-horizon values (wheel buckets), multi-second
   values (overflow heap), and ~1e14 (tick saturation); a small arena
   plus pops/cancels exercises growth and generation reuse of slots. *)
let prop_matches_reference_model =
  let time_gen =
    QCheck2.Gen.(
      oneof
        [
          float_range 0. 0.01;
          float_range 0. 2.;
          float_range 0. 1e6;
          return 1.5e14;
        ])
  in
  let op_gen =
    QCheck2.Gen.(
      frequency
        [
          (4, map (fun t -> `Add t) time_gen);
          (2, map (fun i -> `Cancel i) (int_range 0 10_000));
          (2, return `Pop);
          (1, return `Peek);
        ])
  in
  QCheck2.Test.make ~name:"event queue matches sorted-list reference model"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 200) op_gen)
    (fun ops ->
      let q = Sim.Event_queue.create ~capacity:16 ~dummy:(-1) () in
      (* reference: (time, insertion seq, key) sorted by (time, seq) *)
      let model = ref [] in
      let insert entry =
        let time, seq, _ = entry in
        let rec go = function
          | [] -> [ entry ]
          | ((t, s, _) as hd) :: tl ->
              if t < time || (t = time && s < seq) then hd :: go tl
              else entry :: hd :: tl
        in
        model := go !model
      in
      let handles = ref [] in
      let next_seq = ref 0 in
      let next_key = ref 0 in
      let ok = ref true in
      let check b = if not b then ok := false in
      List.iter
        (fun op ->
          if !ok then
            match op with
            | `Add time ->
                let key = !next_key in
                incr next_key;
                let id = Sim.Event_queue.add q ~time key in
                insert (time, !next_seq, key);
                incr next_seq;
                handles := (key, id) :: !handles
            | `Cancel i ->
                let n = List.length !handles in
                if n > 0 then begin
                  let key, id = List.nth !handles (i mod n) in
                  let in_model =
                    List.exists (fun (_, _, k) -> k = key) !model
                  in
                  check (Sim.Event_queue.cancel q id = in_model);
                  (* a second cancel of the same handle must refuse *)
                  check (not (Sim.Event_queue.cancel q id));
                  model := List.filter (fun (_, _, k) -> k <> key) !model
                end
            | `Pop -> (
                match (Sim.Event_queue.pop q, !model) with
                | None, [] -> ()
                | Some (t, k), (mt, _, mk) :: rest ->
                    check (t = mt && k = mk);
                    model := rest
                | _ -> check false)
            | `Peek -> (
                match (Sim.Event_queue.peek_time q, !model) with
                | None, [] -> ()
                | Some t, (mt, _, _) :: _ -> check (t = mt)
                | _ -> check false))
        ops;
      check (Sim.Event_queue.length q = List.length !model);
      !ok)

let suite =
  [
    Alcotest.test_case "pop order" `Quick test_pop_order;
    Alcotest.test_case "FIFO tie-break" `Quick test_tie_break_fifo;
    Alcotest.test_case "cancel semantics" `Quick test_cancel;
    Alcotest.test_case "length tracks live" `Quick test_length_tracks_live;
    Alcotest.test_case "peek skips cancelled" `Quick test_peek_time_skips_cancelled;
    Alcotest.test_case "vacated slots release payloads" `Quick
      test_vacated_slots_release_payloads;
    Alcotest.test_case "pop_run clock writes and stop reasons" `Quick
      test_pop_run_clock_and_stops;
    QCheck_alcotest.to_alcotest prop_pop_sorted;
    QCheck_alcotest.to_alcotest prop_cancel_removes;
    QCheck_alcotest.to_alcotest prop_matches_reference_model;
  ]
