(* FEC substrate tests: bit buffers, Hamming, convolutional/Viterbi,
   interleaver, and code composition. *)

let bits_of_string s = Fec.Bitbuf.of_string s

let test_bitbuf_roundtrip () =
  let b = bits_of_string "OCaml" in
  Alcotest.(check int) "length" 40 (Fec.Bitbuf.length b);
  Alcotest.(check string) "to_string" "OCaml" (Fec.Bitbuf.to_string b)

let test_bitbuf_push_get () =
  let b = Fec.Bitbuf.create () in
  List.iter (Fec.Bitbuf.push b) [ true; false; true; true ];
  Alcotest.(check int) "length" 4 (Fec.Bitbuf.length b);
  Alcotest.(check (list bool)) "bits" [ true; false; true; true ]
    (Fec.Bitbuf.to_bits b)

let test_bitbuf_set () =
  let b = Fec.Bitbuf.of_bits [ false; false; false ] in
  Fec.Bitbuf.set b 1 true;
  Alcotest.(check (list bool)) "set" [ false; true; false ] (Fec.Bitbuf.to_bits b)

let test_bitbuf_sub_append () =
  let b = Fec.Bitbuf.of_bits [ true; false; true; false; true ] in
  let s = Fec.Bitbuf.sub b ~pos:1 ~len:3 in
  Alcotest.(check (list bool)) "sub" [ false; true; false ] (Fec.Bitbuf.to_bits s);
  let d = Fec.Bitbuf.create () in
  Fec.Bitbuf.append d s;
  Fec.Bitbuf.append d s;
  Alcotest.(check int) "append length" 6 (Fec.Bitbuf.length d)

let test_bitbuf_hamming_distance () =
  let a = Fec.Bitbuf.of_bits [ true; false; true ] in
  let b = Fec.Bitbuf.of_bits [ true; true; false ] in
  Alcotest.(check int) "distance 2" 2 (Fec.Bitbuf.hamming_distance a b)

let test_bitbuf_mismatched_distance () =
  let a = Fec.Bitbuf.of_bits [ true ] and b = Fec.Bitbuf.of_bits [] in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Bitbuf.hamming_distance: length mismatch") (fun () ->
      ignore (Fec.Bitbuf.hamming_distance a b))

(* --- Hamming(7,4) --- *)

let test_hamming_roundtrip () =
  let src = bits_of_string "Hello, LAMS" in
  let coded = Fec.Hamming.encode src in
  let decoded = Fec.Hamming.decode coded ~data_bits:(Fec.Bitbuf.length src) in
  Alcotest.(check bool) "roundtrip" true (Fec.Bitbuf.equal src decoded)

let test_hamming_rate () =
  Alcotest.(check int) "8 data bits -> 14 coded" 14
    (Fec.Hamming.coded_bits ~data_bits:8);
  Alcotest.(check int) "padding to nibble" 7 (Fec.Hamming.coded_bits ~data_bits:3)

let test_hamming_corrects_single_error_per_block () =
  let src = bits_of_string "x" in
  let coded = Fec.Hamming.encode src in
  for bit = 0 to Fec.Bitbuf.length coded - 1 do
    let corrupted = Fec.Bitbuf.sub coded ~pos:0 ~len:(Fec.Bitbuf.length coded) in
    Fec.Bitbuf.set corrupted bit (not (Fec.Bitbuf.get corrupted bit));
    let decoded = Fec.Hamming.decode corrupted ~data_bits:8 in
    if not (Fec.Bitbuf.equal src decoded) then
      Alcotest.failf "failed to correct error at bit %d" bit
  done

let test_hamming_string_roundtrip () =
  let s = "the quick brown fox" in
  let coded = Fec.Hamming.encode_string s in
  Alcotest.(check string) "roundtrip" s
    (Fec.Hamming.decode_string coded ~data_bytes:(String.length s))

let prop_hamming_roundtrip =
  QCheck2.Test.make ~name:"hamming roundtrip on arbitrary bits" ~count:200
    QCheck2.Gen.(list_size (int_range 1 120) bool)
    (fun bits ->
      let src = Fec.Bitbuf.of_bits bits in
      let decoded =
        Fec.Hamming.decode (Fec.Hamming.encode src) ~data_bits:(List.length bits)
      in
      Fec.Bitbuf.equal src decoded)

let prop_hamming_single_error =
  QCheck2.Test.make ~name:"hamming corrects one error per block" ~count:200
    QCheck2.Gen.(pair (list_size (int_range 4 64) bool) (int_range 0 10_000))
    (fun (bits, where) ->
      let src = Fec.Bitbuf.of_bits bits in
      let coded = Fec.Hamming.encode src in
      let n = Fec.Bitbuf.length coded in
      let bit = where mod n in
      Fec.Bitbuf.set coded bit (not (Fec.Bitbuf.get coded bit));
      let decoded = Fec.Hamming.decode coded ~data_bits:(List.length bits) in
      Fec.Bitbuf.equal src decoded)

(* --- Convolutional code --- *)

let test_conv_roundtrip () =
  let cc = Fec.Conv_code.default in
  let src = bits_of_string "conv code" in
  let coded = Fec.Conv_code.encode cc src in
  Alcotest.(check int) "coded length" (2 * (72 + 6)) (Fec.Bitbuf.length coded);
  let decoded = Fec.Conv_code.decode cc coded ~data_bits:72 in
  Alcotest.(check bool) "roundtrip" true (Fec.Bitbuf.equal src decoded)

let test_conv_corrects_scattered_errors () =
  let cc = Fec.Conv_code.default in
  let src = bits_of_string "Viterbi test payload" in
  let data_bits = Fec.Bitbuf.length src in
  let coded = Fec.Conv_code.encode cc src in
  (* four errors, far apart: within the free-distance budget *)
  List.iter
    (fun bit -> Fec.Bitbuf.set coded bit (not (Fec.Bitbuf.get coded bit)))
    [ 3; 60; 130; 250 ];
  let decoded = Fec.Conv_code.decode cc coded ~data_bits in
  Alcotest.(check bool) "corrected" true (Fec.Bitbuf.equal src decoded)

let test_conv_length_mismatch () =
  let cc = Fec.Conv_code.default in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Conv_code.decode: coded length mismatch") (fun () ->
      ignore (Fec.Conv_code.decode cc (Fec.Bitbuf.of_bits [ true ]) ~data_bits:8))

let test_conv_bad_params () =
  Alcotest.check_raises "k too big"
    (Invalid_argument "Conv_code.create: constraint_length must be in 2..12")
    (fun () -> ignore (Fec.Conv_code.create ~constraint_length:13 ()))

let prop_conv_roundtrip =
  QCheck2.Test.make ~name:"conv roundtrip on arbitrary bits" ~count:100
    QCheck2.Gen.(list_size (int_range 1 150) bool)
    (fun bits ->
      let cc = Fec.Conv_code.default in
      let src = Fec.Bitbuf.of_bits bits in
      let decoded =
        Fec.Conv_code.decode cc (Fec.Conv_code.encode cc src)
          ~data_bits:(List.length bits)
      in
      Fec.Bitbuf.equal src decoded)

let prop_conv_corrects_two_errors =
  QCheck2.Test.make ~name:"conv corrects any two separated errors" ~count:100
    QCheck2.Gen.(triple (list_size (int_range 30 80) bool) (int_range 0 10_000) (int_range 0 10_000))
    (fun (bits, e1, e2) ->
      let cc = Fec.Conv_code.default in
      let src = Fec.Bitbuf.of_bits bits in
      let coded = Fec.Conv_code.encode cc src in
      let n = Fec.Bitbuf.length coded in
      let b1 = e1 mod n and b2 = e2 mod n in
      Fec.Bitbuf.set coded b1 (not (Fec.Bitbuf.get coded b1));
      if b2 <> b1 then Fec.Bitbuf.set coded b2 (not (Fec.Bitbuf.get coded b2));
      let decoded = Fec.Conv_code.decode cc coded ~data_bits:(List.length bits) in
      Fec.Bitbuf.equal src decoded)

(* --- Interleaver --- *)

let prop_conv_differential =
  (* the fast table-driven decoder must agree bit-for-bit with the
     reference trellis on arbitrary noise, including flip counts far
     beyond the correction radius where only the shared tie-breaking rule
     pins down the answer; sweeping constraint lengths exercises every
     table stride *)
  QCheck2.Test.make ~name:"fast viterbi = reference viterbi" ~count:150
    QCheck2.Gen.(
      quad (int_range 0 3)
        (list_size (int_range 1 120) bool)
        (list_size (int_range 0 12) (int_range 0 100_000))
        (int_range 0 10_000))
    (fun (which_code, bits, flips, _salt) ->
      let cc =
        match which_code with
        | 0 -> Fec.Conv_code.default
        | 1 -> Fec.Conv_code.create ~constraint_length:3 ~generators:(0o7, 0o5) ()
        | 2 ->
            Fec.Conv_code.create ~constraint_length:5 ~generators:(0o23, 0o35) ()
        | _ ->
            Fec.Conv_code.create ~constraint_length:9 ~generators:(0o561, 0o753)
              ()
      in
      let data_bits = List.length bits in
      let coded = Fec.Conv_code.encode cc (Fec.Bitbuf.of_bits bits) in
      let n = Fec.Bitbuf.length coded in
      List.iter
        (fun f ->
          let b = f mod n in
          Fec.Bitbuf.set coded b (not (Fec.Bitbuf.get coded b)))
        flips;
      Fec.Bitbuf.equal
        (Fec.Conv_code.decode cc coded ~data_bits)
        (Fec.Conv_code.decode_reference cc coded ~data_bits))

let test_conv_reference_roundtrip () =
  (* the oracle itself still decodes clean input *)
  let cc = Fec.Conv_code.default in
  let src = bits_of_string "reference path" in
  let decoded =
    Fec.Conv_code.decode_reference cc (Fec.Conv_code.encode cc src)
      ~data_bits:(Fec.Bitbuf.length src)
  in
  Alcotest.(check bool) "roundtrip" true (Fec.Bitbuf.equal src decoded)

let test_interleaver_inverse () =
  let il = Fec.Interleaver.create ~rows:4 ~cols:8 in
  let src = bits_of_string "abcd" in
  let deinterleaved = Fec.Interleaver.deinterleave il (Fec.Interleaver.interleave il src) in
  Alcotest.(check bool) "inverse" true (Fec.Bitbuf.equal src deinterleaved)

let test_interleaver_disperses_burst () =
  let rows = 8 and cols = 16 in
  let il = Fec.Interleaver.create ~rows ~cols in
  let n = rows * cols in
  let src = Fec.Bitbuf.of_bits (List.init n (fun _ -> false)) in
  let tx = Fec.Interleaver.interleave il src in
  (* burst of length [rows] on the channel *)
  for bit = 24 to 24 + rows - 1 do
    Fec.Bitbuf.set tx bit true
  done;
  let rx = Fec.Interleaver.deinterleave il tx in
  (* after deinterleaving, no run of [cols] bits holds more than one error *)
  let worst = ref 0 in
  for start = 0 to n - cols do
    let count = ref 0 in
    for i = start to start + cols - 1 do
      if Fec.Bitbuf.get rx i then incr count
    done;
    worst := max !worst !count
  done;
  if !worst > 1 then Alcotest.failf "burst not dispersed: %d errors in a window" !worst

let test_interleaver_requires_block_multiple () =
  let il = Fec.Interleaver.create ~rows:2 ~cols:3 in
  Alcotest.check_raises "bad length"
    (Invalid_argument "Interleaver: length is not a multiple of the block size")
    (fun () -> ignore (Fec.Interleaver.interleave il (Fec.Bitbuf.of_bits [ true ])))

let test_interleaver_pad () =
  let il = Fec.Interleaver.create ~rows:2 ~cols:3 in
  let padded = Fec.Interleaver.pad_to_block il (Fec.Bitbuf.of_bits [ true ]) in
  Alcotest.(check int) "padded to 6" 6 (Fec.Bitbuf.length padded);
  Alcotest.(check bool) "first bit kept" true (Fec.Bitbuf.get padded 0)

let prop_interleave_is_permutation =
  QCheck2.Test.make ~name:"interleave/deinterleave are inverse permutations"
    ~count:200
    QCheck2.Gen.(triple (int_range 1 8) (int_range 1 8) (list_size (int_range 0 64) bool))
    (fun (rows, cols, bits) ->
      let il = Fec.Interleaver.create ~rows ~cols in
      let src = Fec.Interleaver.pad_to_block il (Fec.Bitbuf.of_bits bits) in
      let fwd = Fec.Interleaver.interleave il src in
      Fec.Bitbuf.equal src (Fec.Interleaver.deinterleave il fwd)
      && Fec.Bitbuf.length fwd = Fec.Bitbuf.length src)

(* --- Code composition --- *)

let test_code_roundtrips () =
  List.iter
    (fun code ->
      if not (Fec.Code.roundtrip_ok code "round trip me please") then
        Alcotest.failf "roundtrip failed for %s" code.Fec.Code.name)
    [
      Fec.Code.identity;
      Fec.Code.hamming74;
      Fec.Code.conv_default;
      Fec.Code.with_interleaver (Fec.Interleaver.create ~rows:8 ~cols:8)
        Fec.Code.conv_default;
    ]

let test_code_rates () =
  let r_ident = Fec.Code.rate Fec.Code.identity ~data_bits:100 in
  Alcotest.(check (float 1e-9)) "identity rate 1" 1. r_ident;
  let r_hamming = Fec.Code.rate Fec.Code.hamming74 ~data_bits:100 in
  if r_hamming > 4. /. 7. +. 0.01 || r_hamming < 0.5 then
    Alcotest.failf "hamming rate %g" r_hamming

let test_composed_code_beats_bare_code_on_burst () =
  (* a burst of 8 errors defeats the bare convolutional code but the
     8-row interleaver disperses it into correctable isolated errors *)
  let data = "burst-test-data!" in
  let src = bits_of_string data in
  let data_bits = Fec.Bitbuf.length src in
  let il = Fec.Interleaver.create ~rows:8 ~cols:32 in
  let composed = Fec.Code.with_interleaver il Fec.Code.conv_default in
  let tx = composed.Fec.Code.encode src in
  for bit = 40 to 47 do
    Fec.Bitbuf.set tx bit (not (Fec.Bitbuf.get tx bit))
  done;
  let decoded = composed.Fec.Code.decode tx ~data_bits in
  Alcotest.(check bool) "interleaved code corrects the burst" true
    (Fec.Bitbuf.equal src decoded)

let suite =
  [
    Alcotest.test_case "bitbuf roundtrip" `Quick test_bitbuf_roundtrip;
    Alcotest.test_case "bitbuf push/get" `Quick test_bitbuf_push_get;
    Alcotest.test_case "bitbuf set" `Quick test_bitbuf_set;
    Alcotest.test_case "bitbuf sub/append" `Quick test_bitbuf_sub_append;
    Alcotest.test_case "bitbuf hamming distance" `Quick test_bitbuf_hamming_distance;
    Alcotest.test_case "bitbuf distance mismatch" `Quick test_bitbuf_mismatched_distance;
    Alcotest.test_case "hamming roundtrip" `Quick test_hamming_roundtrip;
    Alcotest.test_case "hamming rate" `Quick test_hamming_rate;
    Alcotest.test_case "hamming corrects single error" `Quick
      test_hamming_corrects_single_error_per_block;
    Alcotest.test_case "hamming string roundtrip" `Quick test_hamming_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_hamming_roundtrip;
    QCheck_alcotest.to_alcotest prop_hamming_single_error;
    Alcotest.test_case "conv roundtrip" `Quick test_conv_roundtrip;
    Alcotest.test_case "conv corrects scattered errors" `Quick
      test_conv_corrects_scattered_errors;
    Alcotest.test_case "conv length mismatch" `Quick test_conv_length_mismatch;
    Alcotest.test_case "conv bad params" `Quick test_conv_bad_params;
    QCheck_alcotest.to_alcotest prop_conv_roundtrip;
    QCheck_alcotest.to_alcotest prop_conv_corrects_two_errors;
    Alcotest.test_case "conv reference decoder roundtrip" `Quick
      test_conv_reference_roundtrip;
    QCheck_alcotest.to_alcotest prop_conv_differential;
    Alcotest.test_case "interleaver inverse" `Quick test_interleaver_inverse;
    Alcotest.test_case "interleaver disperses burst" `Quick
      test_interleaver_disperses_burst;
    Alcotest.test_case "interleaver block multiple" `Quick
      test_interleaver_requires_block_multiple;
    Alcotest.test_case "interleaver pad" `Quick test_interleaver_pad;
    QCheck_alcotest.to_alcotest prop_interleave_is_permutation;
    Alcotest.test_case "code roundtrips" `Quick test_code_roundtrips;
    Alcotest.test_case "code rates" `Quick test_code_rates;
    Alcotest.test_case "interleaved code corrects burst" `Quick
      test_composed_code_beats_bare_code_on_burst;
  ]
