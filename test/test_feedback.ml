(* Tests for the Byzantine-feedback hardening layer: lie-script parsing,
   the no-false-positive guard property (honest feedback is never
   quarantined, for any variant, seed or channel noise), per-lie-class
   detection and recovery, the capped fault-log ring, adversary
   RNG-stream compatibility, the golden lying-feedback trace, and E24
   soak determinism across worker counts. *)

module E24 = Experiments.E24_feedback
module F = Channel.Fault

(* --- lie-script parsing -------------------------------------------------- *)

let same_spec msg input expected =
  match F.of_string input with
  | Error e -> Alcotest.failf "%s: unexpected parse error: %s" msg e
  | Ok spec ->
      Alcotest.(check string)
        msg
        (F.describe (F.compile expected))
        (F.describe (F.compile spec))

let test_lie_script_parse () =
  same_spec "forge rule" "forge-ack cp-nak copies=1"
    (F.Rules [ F.rule ~copies:1 F.Cp_nak F.Forge_ack ]);
  same_spec "rewrite with delta and window"
    "rewrite-cp-seq control-nth=6 delta=-3 from=0.001 until=0.2"
    (F.Rules
       [
         F.rule ~window:(0.001, 0.2) (F.Control_nth 6)
           (F.Rewrite_cp_seq { delta = -3 });
       ]);
  same_spec "stale replay default back"
    "# lie script\ninject-stale-cp any-control\n"
    (F.Rules [ F.rule F.Any_control (F.Inject_stale_cp { back = 1 }) ]);
  same_spec "blackout sugar" "blackout from=0.005 until=0.015"
    (F.Rules [ F.blackout ~from:0.005 ~until:0.015 ]);
  same_spec "lying adversary"
    "adversary seed=9 p-control=0.01 p-lie=0.05 \
     lies=forge-ack,rewrite-cp-seq,inject-stale-cp"
    (F.adversary ~seed:9 ~p_control:0.01 ~p_lie:0.05
       ~lies:
         [
           F.Forge_ack;
           F.Rewrite_cp_seq { delta = -1 };
           F.Inject_stale_cp { back = 1 };
         ]
       ())

let test_lie_script_rejects () =
  (match F.of_string "forge-ack cp-nak copies=zero" with
  | Ok _ -> Alcotest.fail "malformed copies accepted"
  | Error _ -> ());
  (match F.of_string "blackout from=0.01" with
  | Ok _ -> Alcotest.fail "blackout without until accepted"
  | Error _ -> ());
  match F.of_string "adversary seed=1 p-lie=0.5 lies=drop" with
  | Ok _ -> Alcotest.fail "drop accepted as a lie class"
  | Error _ -> ()

(* --- no false positives on honest feedback ------------------------------- *)

(* The guard's entire value rests on transparency under honest traffic:
   across variants, seeds and channel noise (including reverse-channel
   corruption, which is CRC-detectable and must pass through untouched),
   a fault-free-feedback run may never quarantine a checkpoint, force a
   resync, or change what gets delivered. *)
let guard_cfg = Dlc.Guard.default_config

let honest_run ~variant ~seed ~ber =
  let cber = ber /. 10. in
  let n = 80 in
  let t, guard =
    match variant with
    | 0 ->
        let params =
          { Lams_dlc.Params.default with Lams_dlc.Params.guard = Some guard_cfg }
        in
        let t, s = Proto_harness.lams ~seed ~ber ~cber ~params () in
        (t, Lams_dlc.Session.guard s)
    | 1 ->
        let params =
          { Hdlc.Params.default with Hdlc.Params.guard = Some guard_cfg }
        in
        let t, s = Proto_harness.hdlc ~seed ~ber ~cber ~params () in
        (t, Hdlc.Session.guard s)
    | _ ->
        let params =
          { Nbdt.Params.default with Nbdt.Params.guard = Some guard_cfg }
        in
        let t, s = Proto_harness.nbdt ~seed ~ber ~cber ~params () in
        (t, Nbdt.Session.guard s)
  in
  Proto_harness.offer_all t n;
  Proto_harness.run_to_completion t ~horizon:120.;
  let g = Option.get guard in
  Dlc.Guard.quarantines g = 0
  && Dlc.Guard.resyncs_forced g = 0
  && (not (Dlc.Guard.failed g))
  && Hashtbl.length t.Proto_harness.delivered = n

let prop_no_false_positives =
  QCheck2.Test.make
    ~name:"honest feedback is never quarantined (any variant, seed, noise)"
    ~count:24
    QCheck2.Gen.(
      triple (int_range 0 10_000) (int_range 0 2) (int_range 0 20))
    (fun (seed, variant, ber_scale) ->
      honest_run ~variant ~seed ~ber:(float_of_int ber_scale *. 1e-5))

(* --- per-lie-class detection and recovery -------------------------------- *)

let test_forge_unguarded_loses_data () =
  (* the bare paper protocol believes the forged ACK: the sender
     releases frames the receiver never got, the receiver's later NAKs
     reference freed buffer slots, and the stream silently loses data —
     exactly the failure mode the oracle's wrongful-release check
     names *)
  List.iter
    (fun variant ->
      let o = E24.run_one ~guard_on:false ~seed:11 variant E24.Forge in
      Alcotest.(check bool) "lie told" true (o.E24.lies_told >= 1);
      Alcotest.(check bool) "wrongful releases detected" true
        (o.E24.wrongful >= 1);
      Alcotest.(check bool) "stream incomplete" false o.E24.completed)
    [ E24.Lams; E24.Nbdt_bulk ]

let test_forge_guarded_converges () =
  List.iter
    (fun variant ->
      let o = E24.run_one ~guard_on:true ~seed:11 variant E24.Forge in
      Alcotest.(check int) "one quarantine" 1 o.E24.quarantines;
      Alcotest.(check int) "one forced resync" 1 o.E24.resyncs;
      Alcotest.(check int) "no wrongful release" 0 o.E24.wrongful;
      Alcotest.(check bool) "stream completed" true o.E24.completed;
      Alcotest.(check int) "episode resolved" 1 o.E24.resolved;
      Alcotest.(check bool) "bounded time-to-resync" true
        (o.E24.time_to_resync > 0. && o.E24.time_to_resync < 0.05))
    [ E24.Lams; E24.Nbdt_bulk ]

let test_rewrite_and_stale_guarded () =
  List.iter
    (fun (variant, lie) ->
      let o = E24.run_one ~guard_on:true ~seed:11 variant lie in
      Alcotest.(check bool) "quarantined" true (o.E24.quarantines >= 1);
      Alcotest.(check int) "no wrongful release" 0 o.E24.wrongful;
      Alcotest.(check bool) "stream completed" true o.E24.completed)
    [
      (E24.Lams, E24.Rewrite);
      (E24.Lams, E24.Stale);
      (E24.Nbdt_bulk, E24.Rewrite);
      (E24.Nbdt_bulk, E24.Stale);
      (E24.Sr_hdlc, E24.Stale);
    ]

let test_blackout_safe () =
  (* total reverse silence is degradation, not corruption: no wrongful
     release ever, and the stream still completes through the variants'
     own silence recovery; the goodput floor through the window is
     finite because the forward path keeps delivering *)
  List.iter
    (fun variant ->
      List.iter
        (fun guard_on ->
          let o = E24.run_one ~guard_on ~seed:11 variant E24.Blackout in
          Alcotest.(check int) "no wrongful release" 0 o.E24.wrongful;
          Alcotest.(check bool) "stream completed" true o.E24.completed;
          Alcotest.(check bool) "goodput floor measured" true
            (Float.is_finite o.E24.goodput_floor && o.E24.goodput_floor >= 0.))
        [ false; true ])
    [ E24.Lams; E24.Sr_hdlc; E24.Nbdt_bulk ]

let test_fault_free_rows_never_quarantine () =
  List.iter
    (fun variant ->
      let o = E24.run_one ~guard_on:true ~seed:11 variant E24.No_lie in
      Alcotest.(check int) "zero quarantines" 0 o.E24.quarantines;
      Alcotest.(check int) "zero resyncs" 0 o.E24.resyncs;
      Alcotest.(check bool) "completed" true o.E24.completed)
    [ E24.Lams; E24.Sr_hdlc; E24.Nbdt_bulk ]

(* --- capped fault log ring ----------------------------------------------- *)

let test_fault_log_ring_capped () =
  let fault = F.of_rules [ F.rule F.Any_iframe F.Drop ] in
  let n = F.log_capacity + 57 in
  for i = 0 to n - 1 do
    let frame = Frame.Wire.Data (Frame.Iframe.create ~seq:i ~payload:"p") in
    match F.decision fault ~now:(float_of_int i) frame with
    | Channel.Link.Drop -> ()
    | _ -> Alcotest.fail "rule did not drop"
  done;
  Alcotest.(check int) "hits counts every fault" n (F.hits fault);
  Alcotest.(check int) "ring retains exactly the capacity" F.log_capacity
    (F.log_retained fault);
  Alcotest.(check int) "log list matches the retained count" F.log_capacity
    (List.length (F.log fault));
  (* the ring keeps the newest entries *)
  match F.log fault with
  | (t0, _) :: _ ->
      Alcotest.(check (float 1e-9))
        "oldest retained entry is hit n - capacity"
        (float_of_int (n - F.log_capacity))
        t0
  | [] -> Alcotest.fail "empty log"

(* --- adversary RNG-stream compatibility ---------------------------------- *)

let test_adversary_stream_compat () =
  (* the pinned draw order (drop, payload-corrupt, header-corrupt, lie)
     skips each draw entirely while its probability is 0, so switching
     on control-frame lies must not perturb the I-frame fate stream of
     an otherwise identical adversary *)
  let decisions spec =
    let t = F.compile spec in
    List.init 300 (fun i ->
        let frame =
          Frame.Wire.Data (Frame.Iframe.create ~seq:i ~payload:"p")
        in
        match F.decision t ~now:(float_of_int i *. 1e-4) frame with
        | Channel.Link.Pass -> 'p'
        | Channel.Link.Drop -> 'd'
        | Channel.Link.Corrupt_payload -> 'c'
        | Channel.Link.Corrupt_header -> 'h'
        | Channel.Link.Replace _ -> 'r')
  in
  let legacy = F.adversary ~seed:42 ~p_iframe:0.1 () in
  let lying =
    F.adversary ~seed:42 ~p_iframe:0.1 ~p_lie:0.9 ~lies:[ F.Forge_ack ] ()
  in
  Alcotest.(check (list char))
    "I-frame fates unchanged by enabling control-frame lies"
    (decisions legacy) (decisions lying);
  let corrupting =
    F.adversary ~seed:42 ~p_iframe:0.1 ~p_corrupt_payload:0.2 ()
  in
  Alcotest.(check bool)
    "payload corruption does perturb the stream (sanity)" true
    (decisions legacy <> decisions corrupting)

(* --- golden lying-feedback trace ----------------------------------------- *)

(* dune runtest runs in _build/default/test where the deps glob places
   data/; fall back to the source tree for dune exec from the root *)
let golden_path =
  if Sys.file_exists "data/feedback-golden.jsonl" then
    "data/feedback-golden.jsonl"
  else "test/data/feedback-golden.jsonl"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* the canonical lying-feedback scenario behind the golden:
   `feedback run lams --lie forge-ack --seed 7 --frames 200` *)
let regenerate_golden () =
  let recorder = Trace.Recorder.create ~name:"feedback-golden.jsonl" () in
  let buf = Buffer.create 65536 in
  Trace.Recorder.set_sink recorder (fun e ->
      Buffer.add_string buf (Trace.Event.to_line e);
      Buffer.add_char buf '\n');
  let o =
    E24.run_one ~recorder ~frames:200 ~guard_on:true ~seed:7 E24.Lams E24.Forge
  in
  (* the golden pins the whole ladder: lie -> quarantine -> forced
     resync -> convergence with nothing wrongly released *)
  Alcotest.(check int) "golden: one lie" 1 o.E24.lies_told;
  Alcotest.(check int) "golden: one quarantine" 1 o.E24.quarantines;
  Alcotest.(check int) "golden: one forced resync" 1 o.E24.resyncs;
  Alcotest.(check int) "golden: no wrongful release" 0 o.E24.wrongful;
  Alcotest.(check bool) "golden: completed" true o.E24.completed;
  ( Buffer.contents buf,
    Bench_report.Json.to_string ~indent:2
      (Trace.Metrics.to_json (Trace.Recorder.metrics recorder))
    ^ "\n" )

let test_golden_trace () =
  let trace, metrics = regenerate_golden () in
  (match Trace.Schema.validate trace with
  | Ok n -> Alcotest.(check bool) "events recorded" true (n > 100)
  | Error e -> Alcotest.failf "regenerated trace breaks the schema: %s" e);
  Alcotest.(check bool) "trace records the quarantine" true
    (Astring.String.is_infix ~affix:"cp-quarantined" trace);
  Alcotest.(check bool) "trace records the forced resync" true
    (Astring.String.is_infix ~affix:"resync-forced" trace);
  Alcotest.(check string)
    "trace is byte-identical to the checked-in golden"
    (read_file golden_path) trace;
  Alcotest.(check string)
    "metrics sidecar matches too"
    (read_file (golden_path ^ ".metrics.json"))
    metrics

(* --- soak determinism across worker counts ------------------------------ *)

let test_soak_jobs_determinism () =
  let json report =
    Bench_report.Json.to_string ~indent:2
      (Bench_report.Matrix_report.to_json ~with_meta:false report)
  in
  let seq = E24.soak ~jobs:1 ~root_seed:7 ~schedules:3 () in
  let par = E24.soak ~jobs:2 ~root_seed:7 ~schedules:3 () in
  Alcotest.(check string)
    "parallel soak is byte-identical to sequential" (json seq) (json par);
  List.iter
    (fun (e : Bench_report.Matrix_report.experiment) ->
      List.iter
        (fun (p : Bench_report.Matrix_report.point) ->
          match List.assoc_opt "wrongful_releases" p.metrics with
          | Some s ->
              Alcotest.(check (float 0.))
                (p.label ^ ": no wrongful releases")
                0. s.Bench_report.Matrix_report.max
          | None -> Alcotest.failf "%s: wrongful_releases missing" p.label)
        e.Bench_report.Matrix_report.points)
    seq.Bench_report.Matrix_report.experiments

let suite =
  [
    Alcotest.test_case "lie script: parse and describe" `Quick
      test_lie_script_parse;
    Alcotest.test_case "lie script: malformed inputs rejected" `Quick
      test_lie_script_rejects;
    QCheck_alcotest.to_alcotest prop_no_false_positives;
    Alcotest.test_case "forge-ack unguarded: silent data loss" `Quick
      test_forge_unguarded_loses_data;
    Alcotest.test_case "forge-ack guarded: quarantine, resync, converge"
      `Quick test_forge_guarded_converges;
    Alcotest.test_case "rewrite and stale-replay guarded" `Quick
      test_rewrite_and_stale_guarded;
    Alcotest.test_case "blackout: degradation without wrongful release"
      `Quick test_blackout_safe;
    Alcotest.test_case "lie-free rows never quarantine" `Quick
      test_fault_free_rows_never_quarantine;
    Alcotest.test_case "fault log ring is capped" `Quick
      test_fault_log_ring_capped;
    Alcotest.test_case "adversary RNG-stream compatibility" `Quick
      test_adversary_stream_compat;
    Alcotest.test_case "golden lying-feedback trace" `Quick test_golden_trace;
    Alcotest.test_case "soak: jobs-count determinism" `Quick
      test_soak_jobs_determinism;
  ]
