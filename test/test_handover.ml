(* Handover layer tests: contact plans, the link lifecycle, carryover
   snapshots, the session manager across windows and mid-window
   failures, adversarial-phase link cuts, the flight-recorder view of a
   failed handover, and the seed-pinned chaos soak. *)

module Plan = Handover.Plan
module Lifecycle = Handover.Lifecycle
module Carryover = Handover.Carryover
module Manager = Handover.Manager

let w t_start t_end = { Orbit.Contact.t_start; t_end }

let feq name a b ~eps =
  if Float.abs (a -. b) > eps then Alcotest.failf "%s: %g != %g" name a b

(* --- Plan ---------------------------------------------------------------- *)

let test_plan_parse_roundtrip () =
  let text =
    "# three contacts\n\
     retarget 0.002\n\
     window 0 0.025  # first\n\
     \n\
     window 0.035 0.06\n\
     window 0.07 0.095\n"
  in
  match Plan.of_string text with
  | Error e -> Alcotest.fail e
  | Ok p -> (
      feq "retarget" 0.002 (Plan.retarget_overhead p) ~eps:0.;
      Alcotest.(check int) "window count" 3 (List.length (Plan.windows p));
      feq "end time" 0.095 (Option.get (Plan.end_time p)) ~eps:0.;
      (* usable lifetime: each window loses the 2 ms retarget overhead *)
      feq "total usable" (0.075 -. 3. *. 0.002) (Plan.total_usable p) ~eps:1e-12;
      match Plan.of_string (Plan.to_string p) with
      | Error e -> Alcotest.failf "round-trip rejected: %s" e
      | Ok p' ->
          (* %.17g serialisation must round-trip floats exactly *)
          Alcotest.(check bool) "round-trips exactly" true
            (Plan.windows p = Plan.windows p'
            && Plan.retarget_overhead p = Plan.retarget_overhead p'))

let expect_plan_error text needle =
  match Plan.of_string text with
  | Ok _ -> Alcotest.failf "accepted invalid plan %S" text
  | Error e ->
      if not (Astring.String.is_infix ~affix:needle e) then
        Alcotest.failf "error %S does not mention %S" e needle

let test_plan_parse_errors () =
  expect_plan_error "window 5 4\n" "empty or reversed";
  expect_plan_error "window 0 10\nwindow 5 20\n" "starts before";
  expect_plan_error "retarget 1\nretarget 2\nwindow 0 1\n"
    "line 2: duplicate retarget";
  expect_plan_error "retarget banana\n" "line 1";
  expect_plan_error "window 0\n" "line 1";
  expect_plan_error "frobnicate 1 2\n" "expected";
  (match Plan.scripted ~retarget_overhead:(-1.) [ w 0. 1. ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative overhead accepted");
  match Plan.scripted ~retarget_overhead:0. [] with
  | Ok p ->
      Alcotest.(check bool) "empty plan has no end" true (Plan.end_time p = None);
      feq "empty plan usable" 0. (Plan.total_usable p) ~eps:0.
  | Error e -> Alcotest.failf "empty plan rejected: %s" e

let test_plan_usable_windows () =
  (* the second window is shorter than the retargeting overhead and
     never comes up; usable_windows must drop it, not return an empty
     interval *)
  let p = Plan.scripted_exn ~retarget_overhead:0.6 [ w 0. 1.; w 2. 2.5 ] in
  (match Plan.usable_windows p with
  | [ u ] ->
      feq "shrunk start" 0.6 u.Orbit.Contact.t_start ~eps:1e-12;
      feq "kept end" 1. u.Orbit.Contact.t_end ~eps:1e-12
  | us -> Alcotest.failf "expected 1 usable window, got %d" (List.length us));
  feq "total usable" 0.4 (Plan.total_usable p) ~eps:1e-12

(* --- Lifecycle ----------------------------------------------------------- *)

let make_duplex engine =
  Channel.Duplex.create_static engine
    ~rng:(Sim.Rng.create ~seed:1)
    ~distance_m:600_000. ~data_rate_bps:300e6
    ~iframe_error:Channel.Error_model.perfect
    ~cframe_error:Channel.Error_model.perfect

let test_lifecycle_schedule () =
  let engine = Sim.Engine.create () in
  let duplex = make_duplex engine in
  let plan = Plan.scripted_exn ~retarget_overhead:0.25 [ w 1. 2.; w 3. 4. ] in
  let probe = Dlc.Probe.create () in
  let lc = Lifecycle.create ~probe engine ~plan ~duplex () in
  Alcotest.(check bool) "starts dark" false
    (Channel.Link.is_up duplex.Channel.Duplex.forward);
  let seen = ref [] in
  Lifecycle.subscribe lc (fun ~now ~old_state:_ next ->
      (* the duplex is switched before hooks fire *)
      Alcotest.(check bool) "duplex matches state" (next = Lifecycle.Up)
        (Channel.Link.is_up duplex.Channel.Duplex.forward);
      seen := (now, next) :: !seen);
  let probed = ref [] in
  Dlc.Probe.subscribe probe (fun ~now:_ -> function
    | Dlc.Probe.Link_transition { state } -> probed := state :: !probed
    | _ -> ());
  Sim.Engine.run engine;
  let expect =
    [
      (1., Lifecycle.Retargeting);
      (1.25, Lifecycle.Up);
      (2., Lifecycle.Down);
      (3., Lifecycle.Retargeting);
      (3.25, Lifecycle.Up);
      (4., Lifecycle.Failed);
    ]
  in
  let got = List.rev !seen in
  Alcotest.(check int) "transition count" (List.length expect) (List.length got);
  List.iter2
    (fun (te, se) (tg, sg) ->
      feq "transition time" te tg ~eps:1e-9;
      Alcotest.(check string) "state" (Lifecycle.state_name se)
        (Lifecycle.state_name sg))
    expect got;
  Alcotest.(check int) "transitions counter" 6 (Lifecycle.transitions lc);
  Alcotest.(check bool) "terminal failed" true (Lifecycle.state lc = Failed);
  Alcotest.(check bool) "dark after failure" false
    (Channel.Link.is_up duplex.Channel.Duplex.forward);
  (* the probe mirrors every transition *)
  Alcotest.(check (list string)) "probe transitions"
    (List.map (fun (_, s) -> Lifecycle.state_name s) expect)
    (List.rev_map Dlc.Probe.link_state_name !probed);
  match Lifecycle.history lc with
  | (t0, Lifecycle.Down) :: rest ->
      feq "history starts at creation" 0. t0 ~eps:0.;
      Alcotest.(check int) "history length" 6 (List.length rest)
  | _ -> Alcotest.fail "history must start with the initial Down"

let test_lifecycle_window_shorter_than_retarget () =
  let engine = Sim.Engine.create () in
  let duplex = make_duplex engine in
  let plan = Plan.scripted_exn ~retarget_overhead:0.5 [ w 1. 1.2 ] in
  let lc = Lifecycle.create engine ~plan ~duplex () in
  let came_up = ref false in
  Lifecycle.subscribe lc (fun ~now:_ ~old_state:_ next ->
      if next = Lifecycle.Up then came_up := true);
  Sim.Engine.run engine;
  Alcotest.(check bool) "never up" false !came_up;
  Alcotest.(check bool) "failed at plan end" true (Lifecycle.state lc = Failed)

let test_lifecycle_empty_plan_fails () =
  let engine = Sim.Engine.create () in
  let duplex = make_duplex engine in
  let lc =
    Lifecycle.create engine ~plan:(Plan.scripted_exn ~retarget_overhead:0. []) ~duplex ()
  in
  Sim.Engine.run engine;
  Alcotest.(check bool) "failed" true (Lifecycle.state lc = Failed)

let test_lifecycle_stop_cancels () =
  let engine = Sim.Engine.create () in
  let duplex = make_duplex engine in
  let plan = Plan.scripted_exn ~retarget_overhead:0. [ w 1. 2. ] in
  let lc = Lifecycle.create engine ~plan ~duplex () in
  Sim.Engine.run engine ~until:0.5;
  Lifecycle.stop lc;
  Sim.Engine.run engine;
  Alcotest.(check bool) "still down" true (Lifecycle.state lc = Down);
  Alcotest.(check int) "no transitions fired" 0 (Lifecycle.transitions lc)

(* --- Carryover ----------------------------------------------------------- *)

let lams_params =
  { Lams_dlc.Params.default with Lams_dlc.Params.w_cp = 1e-3; c_depth = 3 }

let test_carryover_snapshot_and_replay () =
  (* a session transmitting into a dark link resolves nothing: the
     snapshot must classify and return every offered payload, oldest
     first *)
  let engine = Sim.Engine.create () in
  let duplex = make_duplex engine in
  Channel.Duplex.set_down duplex;
  let session = Lams_dlc.Session.create engine ~params:lams_params ~duplex in
  let dlc = Lams_dlc.Session.as_dlc session in
  dlc.Dlc.Session.set_on_deliver (fun ~payload:_ -> ());
  let payloads = List.init 5 (Printf.sprintf "co-%d") in
  List.iter
    (fun p -> Alcotest.(check bool) "offer accepted" true (dlc.Dlc.Session.offer p))
    payloads;
  Sim.Engine.run engine ~until:0.004;
  let co = Carryover.snapshot ~now:(Sim.Engine.now engine) session in
  feq "closed at" 0.004 (Carryover.closed_at co) ~eps:1e-9;
  Alcotest.(check bool) "not empty" false (Carryover.is_empty co);
  Alcotest.(check (list string)) "payloads oldest first" payloads
    (Carryover.payloads co);
  Alcotest.(check int) "verdicts partition the drain" 5
    (Carryover.not_delivered co + Carryover.suspicious co);
  Alcotest.(check (list int)) "silent receiver has no NAK ledger" []
    (Carryover.nak_ledger co);
  (* replay: oldest first, stop at first refusal, suspicious flagged
     before the offer *)
  let accepted = ref [] in
  let flagged = ref 0 in
  let n =
    Carryover.replay co
      ~offer:(fun p ->
        if List.length !accepted < 3 then begin
          accepted := p :: !accepted;
          true
        end
        else false)
      ~on_suspicious:(fun _ -> incr flagged)
  in
  Alcotest.(check int) "stopped at first refusal" 3 n;
  Alcotest.(check (list string)) "replay order" [ "co-0"; "co-1"; "co-2" ]
    (List.rev !accepted);
  (* a run without checkpoints leaves every frame Suspicious; the flag
     fires once per attempted offer (3 accepted + the refused 4th), not
     for payloads replay never reached *)
  Alcotest.(check int) "all drained frames suspicious" 5 (Carryover.suspicious co);
  Alcotest.(check int) "suspicious flagged per attempt" 4 !flagged

let test_carryover_empty_after_completion () =
  let engine = Sim.Engine.create () in
  let duplex = make_duplex engine in
  let session = Lams_dlc.Session.create engine ~params:lams_params ~duplex in
  let dlc = Lams_dlc.Session.as_dlc session in
  dlc.Dlc.Session.set_on_deliver (fun ~payload:_ -> ());
  ignore (dlc.Dlc.Session.offer "only" : bool);
  Sim.Engine.run engine ~until:1.;
  let co = Carryover.snapshot ~now:1. session in
  Alcotest.(check bool) "nothing unresolved" true (Carryover.is_empty co)

(* --- Manager ------------------------------------------------------------- *)

let three_window_plan =
  Plan.scripted_exn ~retarget_overhead:2e-3
    [ w 0. 0.025; w 0.035 0.06; w 0.07 0.095 ]

(* Run [n] payloads through a manager over [plan], watched by the
   cross-handover transfer oracle; returns (manager, transfer, delivered
   table). *)
let run_manager ?(n = 30) ?(params = lams_params) ?(horizon = 0.15) ?on_duplex
    ~plan () =
  let engine = Sim.Engine.create () in
  let duplex = make_duplex engine in
  let mgr = Manager.create engine ~params ~duplex ~plan in
  let transfer = Oracle.Transfer.create ~name:"test-transfer" in
  Oracle.Transfer.observe transfer (Manager.probe mgr);
  Manager.set_on_suspicious_replay mgr (Oracle.Transfer.mark_suspicious transfer);
  let delivered = Hashtbl.create 64 in
  Manager.set_on_deliver mgr (fun ~payload ->
      Hashtbl.replace delivered payload
        (1 + Option.value ~default:0 (Hashtbl.find_opt delivered payload)));
  (match on_duplex with Some f -> f engine duplex | None -> ());
  for i = 0 to n - 1 do
    Alcotest.(check bool) "offer accepted" true
      (Manager.offer mgr (Printf.sprintf "m-%03d" i))
  done;
  Sim.Engine.run engine ~until:horizon;
  Manager.stop mgr;
  Sim.Engine.run engine;
  Oracle.Transfer.finalize ~retained:(Manager.retained mgr) transfer;
  (mgr, transfer, delivered)

let check_all_delivered ~n delivered =
  for i = 0 to n - 1 do
    if not (Hashtbl.mem delivered (Printf.sprintf "m-%03d" i)) then
      Alcotest.failf "payload %d never delivered" i
  done

let test_manager_three_windows_zero_loss () =
  let mgr, transfer, delivered = run_manager ~plan:three_window_plan () in
  let st = Manager.stats mgr in
  Alcotest.(check int) "three windows opened" 3 st.Manager.windows_opened;
  Alcotest.(check int) "one session per window" 3 st.Manager.sessions_created;
  check_all_delivered ~n:30 delivered;
  Alcotest.(check (list string)) "nothing retained" [] (Manager.retained mgr);
  Alcotest.(check int) "spans three windows" 3
    (Oracle.Transfer.sessions_spanned transfer);
  if not (Oracle.Transfer.ok transfer) then
    Alcotest.fail (Oracle.Transfer.report transfer)

let test_manager_blackout_carryover () =
  (* unscheduled outages inside windows force carryovers; the transfer
     oracle holds duplicates to the Suspicious budget, conservation to
     zero loss *)
  let cut engine duplex =
    List.iter
      (fun (down, up) ->
        ignore
          (Sim.Engine.schedule engine ~delay:down (fun () ->
               Channel.Duplex.set_down duplex)
            : Sim.Engine.event_id);
        ignore
          (Sim.Engine.schedule engine ~delay:up (fun () ->
               Channel.Duplex.set_up duplex)
            : Sim.Engine.event_id))
      [ (0.004, 0.01); (0.046, 0.054) ]
  in
  let mgr, transfer, delivered =
    run_manager ~plan:three_window_plan ~on_duplex:cut ()
  in
  check_all_delivered ~n:30 delivered;
  Alcotest.(check (list string)) "nothing retained" [] (Manager.retained mgr);
  if not (Oracle.Transfer.ok transfer) then
    Alcotest.fail (Oracle.Transfer.report transfer)

let test_manager_mid_window_failure_successor () =
  (* an outage long enough to exhaust the Request-NAK backoff makes the
     sender declare failure mid-window; the manager must bring up a
     successor session in the same window and finish the transfer *)
  let params = { lams_params with Lams_dlc.Params.request_nak_retries = 1 } in
  let plan = Plan.scripted_exn ~retarget_overhead:0. [ w 0. 0.3 ] in
  let cut engine duplex =
    ignore
      (Sim.Engine.schedule engine ~delay:0.005 (fun () ->
           Channel.Duplex.set_down duplex)
        : Sim.Engine.event_id);
    ignore
      (Sim.Engine.schedule engine ~delay:0.15 (fun () ->
           Channel.Duplex.set_up duplex)
        : Sim.Engine.event_id)
  in
  let mgr, transfer, delivered =
    run_manager ~params ~plan ~horizon:0.32 ~on_duplex:cut ()
  in
  let st = Manager.stats mgr in
  Alcotest.(check bool) "failure declared mid-window" true
    (st.Manager.mid_window_failures >= 1);
  Alcotest.(check bool) "successor sessions created" true
    (st.Manager.sessions_created > st.Manager.windows_opened);
  Alcotest.(check bool) "oracle saw the failures" true
    (Oracle.Transfer.failures_declared transfer >= 1);
  check_all_delivered ~n:30 delivered;
  if not (Oracle.Transfer.ok transfer) then
    Alcotest.fail (Oracle.Transfer.report transfer)

let test_manager_refuses_after_failed () =
  let engine = Sim.Engine.create () in
  let duplex = make_duplex engine in
  let plan = Plan.scripted_exn ~retarget_overhead:0. [ w 0. 1e-3 ] in
  let mgr = Manager.create engine ~params:lams_params ~duplex ~plan in
  Sim.Engine.run engine;
  Alcotest.(check bool) "lifecycle failed" true
    (Lifecycle.state (Manager.lifecycle mgr) = Failed);
  Alcotest.(check bool) "offer refused" false (Manager.offer mgr "late");
  (* payloads stranded in the buffer stay accounted *)
  Alcotest.(check int) "nothing pending" 0 (Manager.pending mgr)

(* --- adversarial-phase link cuts (E21 scenarios) ------------------------- *)

let test_adversarial_phase_cuts () =
  List.iter
    (fun (label, cut) ->
      let setup =
        {
          Experiments.E21_handover.default_setup with
          Experiments.E21_handover.cut;
          drop_nth_iframe = Some 3;
        }
      in
      let o = Experiments.E21_handover.run_transfer ~seed:11 setup in
      if o.Experiments.E21_handover.violations <> [] then
        Alcotest.failf "%s: %s" label
          (String.concat "; "
             (List.map
                (fun v -> v.Oracle.invariant ^ ": " ^ v.Oracle.detail)
                o.Experiments.E21_handover.violations));
      Alcotest.(check bool) (label ^ " completed") true
        o.Experiments.E21_handover.completed)
    [
      ("cut mid-serialisation", `First_tx);
      ("cut between checkpoint and NAK", `First_nak);
      ("cut during enforced recovery", `Recovery);
    ]

(* --- flight recorder across a failed handover ---------------------------- *)

let test_flight_dump_records_failure_declared () =
  (* Attaching a per-session LAMS oracle to the manager's shared probe is
     the documented anti-pattern: wire numbering restarts with the
     successor session and trips the numbering invariant. Useful here:
     the frozen flight dump must show the failure declaration that
     preceded the restart, as schema-valid events. *)
  let engine = Sim.Engine.create () in
  let duplex = make_duplex engine in
  let params = { lams_params with Lams_dlc.Params.request_nak_retries = 1 } in
  let plan = Plan.scripted_exn ~retarget_overhead:0. [ w 0. 0.3 ] in
  let probe = Dlc.Probe.create () in
  let mgr = Manager.create ~probe engine ~params ~duplex ~plan in
  Manager.set_on_deliver mgr (fun ~payload:_ -> ());
  let recorder = Trace.Recorder.create ~name:"handover-flight" () in
  Trace.Recorder.attach_probe recorder probe;
  let oracle =
    Oracle.create ~name:"per-session-on-shared-probe"
      (Oracle.Lams
         { c_depth = params.Lams_dlc.Params.c_depth; holding_bound = 1. })
  in
  Oracle.observe oracle probe;
  Trace.Recorder.attach_oracle recorder oracle;
  ignore
    (Sim.Engine.schedule engine ~delay:0.005 (fun () ->
         Channel.Duplex.set_down duplex)
      : Sim.Engine.event_id);
  ignore
    (Sim.Engine.schedule engine ~delay:0.15 (fun () ->
         Channel.Duplex.set_up duplex)
      : Sim.Engine.event_id);
  for i = 0 to 19 do
    ignore (Manager.offer mgr (Printf.sprintf "f-%02d" i) : bool)
  done;
  Sim.Engine.run engine ~until:0.32;
  Manager.stop mgr;
  Sim.Engine.run engine;
  match Trace.Recorder.flight_jsonl recorder with
  | None -> Alcotest.fail "numbering restart did not freeze a flight dump"
  | Some dump ->
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' dump)
      in
      (* every line is schema-valid, including the renamed event *)
      List.iter
        (fun line ->
          match Trace.Schema.validate_line line with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "flight line invalid: %s (%s)" e line)
        lines;
      Alcotest.(check bool) "flight shows the failure declaration" true
        (List.exists
           (fun l -> Astring.String.is_infix ~affix:"\"ev\":\"failure-declared\"" l)
           lines);
      Alcotest.(check bool) "flight ends with the violation" true
        (Astring.String.is_infix ~affix:"\"ev\":\"violation\""
           (List.nth lines (List.length lines - 1)))

(* --- Failure_declared from all three protocol variants ------------------- *)

let test_failure_declared_all_variants () =
  let saw probe =
    let seen = ref false in
    Dlc.Probe.subscribe probe (fun ~now:_ -> function
      | Dlc.Probe.Failure_declared -> seen := true
      | _ -> ());
    seen
  in
  (* LAMS: permanent blackout exhausts the Request-NAK backoff *)
  let t, session = Proto_harness.lams ~params:lams_params () in
  let lams_seen = saw (Lams_dlc.Session.probe session) in
  ignore
    (Sim.Engine.schedule t.Proto_harness.engine ~delay:0.005 (fun () ->
         Channel.Duplex.set_down t.Proto_harness.duplex)
      : Sim.Engine.event_id);
  Proto_harness.offer_all t 100;
  Proto_harness.run_to_completion t ~horizon:10.;
  Alcotest.(check bool) "lams declares" true !lams_seen;
  (* HDLC: N2 retries exhausted *)
  let hdlc_params =
    { Hdlc.Params.default with Hdlc.Params.max_retries = 3; t_out = 5e-3 }
  in
  let t, session = Proto_harness.hdlc ~params:hdlc_params () in
  let hdlc_seen = saw (Hdlc.Session.probe session) in
  ignore
    (Sim.Engine.schedule t.Proto_harness.engine ~delay:0.001 (fun () ->
         Channel.Duplex.set_down t.Proto_harness.duplex)
      : Sim.Engine.event_id);
  Proto_harness.offer_all t 50;
  Proto_harness.run_to_completion t ~horizon:5.;
  Alcotest.(check bool) "hdlc declares" true !hdlc_seen;
  (* NBDT: report watchdog gives up *)
  let t, session = Proto_harness.nbdt () in
  let nbdt_seen = saw (Nbdt.Session.probe session) in
  ignore
    (Sim.Engine.schedule t.Proto_harness.engine ~delay:0.002 (fun () ->
         Channel.Duplex.set_down t.Proto_harness.duplex)
      : Sim.Engine.event_id);
  Proto_harness.offer_all t 100;
  Proto_harness.run_to_completion t ~horizon:30.;
  Alcotest.(check bool) "nbdt declares" true !nbdt_seen

(* --- chaos soak ---------------------------------------------------------- *)

let test_chaos_soak () =
  (* 50 seed-pinned random blackout schedules, every run watched by the
     transfer oracle; any violation surfaces in the oracle_violations
     metric of its schedule's point *)
  let report = Experiments.E21_handover.soak ~jobs:2 ~schedules:50 () in
  let points =
    List.concat_map
      (fun e -> e.Bench_report.Matrix_report.points)
      report.Bench_report.Matrix_report.experiments
  in
  Alcotest.(check int) "one point per schedule" 50 (List.length points);
  List.iter
    (fun p ->
      match
        List.assoc_opt "oracle_violations" p.Bench_report.Matrix_report.metrics
      with
      | Some s ->
          if s.Bench_report.Matrix_report.max > 0. then
            Alcotest.failf "schedule %s tripped the oracle"
              p.Bench_report.Matrix_report.label
      | None -> Alcotest.failf "%s lacks oracle_violations"
                  p.Bench_report.Matrix_report.label)
    points

let suite =
  [
    Alcotest.test_case "plan parse round-trip" `Quick test_plan_parse_roundtrip;
    Alcotest.test_case "plan parse errors" `Quick test_plan_parse_errors;
    Alcotest.test_case "plan usable windows" `Quick test_plan_usable_windows;
    Alcotest.test_case "lifecycle schedule" `Quick test_lifecycle_schedule;
    Alcotest.test_case "lifecycle short window" `Quick
      test_lifecycle_window_shorter_than_retarget;
    Alcotest.test_case "lifecycle empty plan" `Quick test_lifecycle_empty_plan_fails;
    Alcotest.test_case "lifecycle stop" `Quick test_lifecycle_stop_cancels;
    Alcotest.test_case "carryover snapshot and replay" `Quick
      test_carryover_snapshot_and_replay;
    Alcotest.test_case "carryover empty when resolved" `Quick
      test_carryover_empty_after_completion;
    Alcotest.test_case "manager three windows zero loss" `Quick
      test_manager_three_windows_zero_loss;
    Alcotest.test_case "manager blackout carryover" `Quick
      test_manager_blackout_carryover;
    Alcotest.test_case "manager mid-window failure successor" `Quick
      test_manager_mid_window_failure_successor;
    Alcotest.test_case "manager refuses after failed" `Quick
      test_manager_refuses_after_failed;
    Alcotest.test_case "adversarial phase cuts" `Quick test_adversarial_phase_cuts;
    Alcotest.test_case "flight dump records failure" `Quick
      test_flight_dump_records_failure_declared;
    Alcotest.test_case "failure declared by all variants" `Quick
      test_failure_declared_all_variants;
    Alcotest.test_case "chaos soak 50 schedules" `Slow test_chaos_soak;
  ]
