(* Unit-level HDLC receiver tests: synthetic arrivals in, supervisory
   frames out. Pins the SREJ/REJ/RR and in-order delivery machinery. *)

type harness = {
  engine : Sim.Engine.t;
  receiver : Hdlc.Receiver.t;
  sent : Frame.Hframe.t list ref;  (* newest first *)
  delivered : int list ref;  (* seqs, newest first *)
}

let make ?(mode = Hdlc.Params.Selective_repeat) ?(window = 8) () =
  let engine = Sim.Engine.create () in
  let reverse =
    Channel.Link.create_static engine
      ~rng:(Sim.Rng.create ~seed:1)
      ~distance_m:1000. ~data_rate_bps:1e9
      ~iframe_error:Channel.Error_model.perfect
      ~cframe_error:Channel.Error_model.perfect
  in
  let sent = ref [] in
  Channel.Link.set_tap reverse (fun ev ->
      match ev with
      | Channel.Link.Tap_tx (Frame.Wire.Hdlc_control h) -> sent := h :: !sent
      | _ -> ());
  Channel.Link.set_receiver reverse (fun _ -> ());
  let params = { Hdlc.Params.default with Hdlc.Params.mode; window } in
  let receiver =
    Hdlc.Receiver.create engine ~params ~reverse ~metrics:(Dlc.Metrics.create ())
      ~probe:(Dlc.Probe.create ())
  in
  let delivered = ref [] in
  Hdlc.Receiver.set_on_deliver receiver (fun ~payload:_ ~seq ->
      delivered := seq :: !delivered);
  { engine; receiver; sent; delivered }

let arrive h ?(status = Channel.Link.Rx_ok) seq =
  Hdlc.Receiver.on_rx h.receiver
    {
      Channel.Link.frame =
        Frame.Wire.Data (Frame.Iframe.create ~seq ~payload:"unit");
      status;
      t_sent = 0.;
    };
  Sim.Engine.run h.engine

let controls_of_kind h kind =
  List.filter (fun hf -> hf.Frame.Hframe.kind = kind) !(h.sent)

let test_in_order_rr_per_advance () =
  let h = make () in
  arrive h 0;
  arrive h 1;
  Alcotest.(check (list int)) "delivered in order" [ 0; 1 ] (List.rev !(h.delivered));
  match controls_of_kind h Frame.Hframe.Rr with
  | rr :: _ -> Alcotest.(check int) "cumulative nr" 2 rr.Frame.Hframe.nr
  | [] -> Alcotest.fail "no RR emitted"

let test_sr_gap_srej_and_buffer () =
  let h = make () in
  arrive h 0;
  arrive h 2;
  (* seq 1 missing: buffered out-of-order, SREJ(1) emitted, no delivery *)
  Alcotest.(check (list int)) "only 0 delivered" [ 0 ] (List.rev !(h.delivered));
  Alcotest.(check int) "one buffered" 1 (Hdlc.Receiver.buffered h.receiver);
  (match controls_of_kind h Frame.Hframe.Srej with
  | [ srej ] -> Alcotest.(check int) "SREJ(1)" 1 srej.Frame.Hframe.nr
  | l -> Alcotest.failf "expected exactly one SREJ, got %d" (List.length l));
  (* the retransmission fills the gap: both deliver, buffer drains *)
  arrive h 1;
  Alcotest.(check (list int)) "drained in order" [ 0; 1; 2 ]
    (List.rev !(h.delivered));
  Alcotest.(check int) "buffer empty" 0 (Hdlc.Receiver.buffered h.receiver)

let test_sr_srej_not_repeated () =
  let h = make () in
  arrive h 0;
  arrive h 2;
  arrive h 3;
  arrive h 4;
  (* three out-of-order arrivals, still exactly one SREJ for seq 1 *)
  Alcotest.(check int) "single SREJ" 1
    (List.length (controls_of_kind h Frame.Hframe.Srej))

let test_gbn_discards_and_rejs_once () =
  let h = make ~mode:Hdlc.Params.Go_back_n () in
  arrive h 0;
  arrive h 2;
  arrive h 3;
  Alcotest.(check (list int)) "only in-order delivered" [ 0 ]
    (List.rev !(h.delivered));
  Alcotest.(check int) "nothing buffered" 0 (Hdlc.Receiver.buffered h.receiver);
  Alcotest.(check int) "one REJ per gap event" 1
    (List.length (controls_of_kind h Frame.Hframe.Rej))

let test_below_window_duplicate_reacked () =
  let h = make () in
  arrive h 0;
  arrive h 1;
  let rr_before = List.length (controls_of_kind h Frame.Hframe.Rr) in
  arrive h 0;
  (* duplicate: dropped, re-acknowledged *)
  Alcotest.(check (list int)) "not redelivered" [ 0; 1 ] (List.rev !(h.delivered));
  Alcotest.(check int) "extra RR" (rr_before + 1)
    (List.length (controls_of_kind h Frame.Hframe.Rr))

let test_poll_answered_with_final () =
  let h = make () in
  arrive h 0;
  Hdlc.Receiver.on_rx h.receiver
    {
      Channel.Link.frame =
        Frame.Wire.Hdlc_control
          (Frame.Hframe.create ~kind:Frame.Hframe.Rr ~nr:0 ~pf:true);
      status = Channel.Link.Rx_ok;
      t_sent = 0.;
    };
  Sim.Engine.run h.engine;
  match !(h.sent) with
  | hf :: _ ->
      Alcotest.(check bool) "final bit" true hf.Frame.Hframe.pf;
      Alcotest.(check int) "reports v_r" 1 hf.Frame.Hframe.nr
  | [] -> Alcotest.fail "poll unanswered"

let test_poll_rerequests_missing () =
  let h = make () in
  arrive h 0;
  arrive h 2;
  let srejs () = List.length (controls_of_kind h Frame.Hframe.Srej) in
  Alcotest.(check int) "first SREJ" 1 (srejs ());
  (* poll implies the sender is stuck: the missing frame is re-SREJed *)
  Hdlc.Receiver.on_rx h.receiver
    {
      Channel.Link.frame =
        Frame.Wire.Hdlc_control
          (Frame.Hframe.create ~kind:Frame.Hframe.Rr ~nr:0 ~pf:true);
      status = Channel.Link.Rx_ok;
      t_sent = 0.;
    };
  Sim.Engine.run h.engine;
  Alcotest.(check int) "re-SREJed on poll" 2 (srejs ())

let test_corrupt_in_window_srejed () =
  let h = make () in
  arrive h 0;
  arrive h ~status:Channel.Link.Rx_payload_corrupt 1;
  match controls_of_kind h Frame.Hframe.Srej with
  | [ srej ] -> Alcotest.(check int) "SREJ for corrupt frame" 1 srej.Frame.Hframe.nr
  | l -> Alcotest.failf "expected one SREJ, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "in-order RR per advance" `Quick test_in_order_rr_per_advance;
    Alcotest.test_case "SR gap: SREJ + buffer" `Quick test_sr_gap_srej_and_buffer;
    Alcotest.test_case "SREJ not repeated" `Quick test_sr_srej_not_repeated;
    Alcotest.test_case "GBN discards + one REJ" `Quick test_gbn_discards_and_rejs_once;
    Alcotest.test_case "duplicate re-acked" `Quick test_below_window_duplicate_reacked;
    Alcotest.test_case "poll answered with F" `Quick test_poll_answered_with_final;
    Alcotest.test_case "poll re-requests missing" `Quick test_poll_rerequests_missing;
    Alcotest.test_case "corrupt in window SREJed" `Quick test_corrupt_in_window_srejed;
  ]
