(* Unit-level HDLC sender tests: window discipline, cumulative RR,
   SREJ/REJ handling, observed through a link tap. *)

type harness = {
  engine : Sim.Engine.t;
  sender : Hdlc.Sender.t;
  txed : int list ref;  (* I-frame seqs in transmission order, newest first *)
}

let make ?(mode = Hdlc.Params.Selective_repeat) ?(window = 4) () =
  let engine = Sim.Engine.create () in
  let forward =
    Channel.Link.create_static engine
      ~rng:(Sim.Rng.create ~seed:1)
      ~distance_m:1000. ~data_rate_bps:1e9
      ~iframe_error:Channel.Error_model.perfect
      ~cframe_error:Channel.Error_model.perfect
  in
  let txed = ref [] in
  Channel.Link.set_tap forward (fun ev ->
      match ev with
      | Channel.Link.Tap_tx (Frame.Wire.Data i) ->
          txed := i.Frame.Iframe.seq :: !txed
      | _ -> ());
  Channel.Link.set_receiver forward (fun _ -> ());
  let params =
    { Hdlc.Params.default with Hdlc.Params.mode; window; seq_bits = 3 }
  in
  let sender =
    Hdlc.Sender.create engine ~params ~forward ~metrics:(Dlc.Metrics.create ())
      ~probe:(Dlc.Probe.create ())
  in
  { engine; sender; txed }

let offer_n h n =
  for i = 0 to n - 1 do
    if not (Hdlc.Sender.offer h.sender (Printf.sprintf "p%d" i)) then
      Alcotest.failf "offer %d refused" i
  done;
  Sim.Engine.run h.engine ~until:(Sim.Engine.now h.engine +. 1e-3)

let control h ?(pf = false) kind nr =
  Hdlc.Sender.on_rx h.sender
    {
      Channel.Link.frame =
        Frame.Wire.Hdlc_control (Frame.Hframe.create ~kind ~nr ~pf);
      status = Channel.Link.Rx_ok;
      t_sent = 0.;
    };
  Sim.Engine.run h.engine ~until:(Sim.Engine.now h.engine +. 1e-3)

let test_window_blocks_at_w () =
  let h = make ~window:4 () in
  offer_n h 10;
  Alcotest.(check (list int)) "only W transmitted" [ 0; 1; 2; 3 ]
    (List.rev !(h.txed));
  Alcotest.(check int) "in window" 4 (Hdlc.Sender.in_window h.sender);
  Alcotest.(check bool) "stalled" true (Hdlc.Sender.window_stalled h.sender)

let test_rr_slides_window () =
  let h = make ~window:4 () in
  offer_n h 10;
  control h Frame.Hframe.Rr 2;
  (* frames 0,1 acked: 4,5 may go (modulo-8 numbering) *)
  Alcotest.(check (list int)) "window slid" [ 0; 1; 2; 3; 4; 5 ]
    (List.rev !(h.txed));
  Alcotest.(check int) "two unacked remain capped" 4
    (Hdlc.Sender.in_window h.sender)

let test_srej_retransmits_selectively () =
  let h = make ~window:4 () in
  offer_n h 4;
  control h Frame.Hframe.Srej 1;
  (* frame 1 resent; others untouched; no window slide *)
  Alcotest.(check (list int)) "selective resend" [ 0; 1; 2; 3; 1 ]
    (List.rev !(h.txed));
  Alcotest.(check int) "window unchanged" 4 (Hdlc.Sender.in_window h.sender)

let test_rej_rolls_back () =
  let h = make ~mode:Hdlc.Params.Go_back_n ~window:4 () in
  offer_n h 4;
  control h Frame.Hframe.Rej 1;
  (* frame 0 acked; 1,2,3 resent in order *)
  Alcotest.(check (list int)) "go-back-n" [ 0; 1; 2; 3; 1; 2; 3 ]
    (List.rev !(h.txed))

let test_cumulative_ack_releases_all () =
  let h = make ~window:4 () in
  offer_n h 4;
  control h Frame.Hframe.Rr 4;
  Alcotest.(check int) "all released" 0 (Hdlc.Sender.in_window h.sender);
  Alcotest.(check int) "backlog empty" 0 (Hdlc.Sender.backlog h.sender)

let test_stale_rr_ignored () =
  let h = make ~window:4 () in
  offer_n h 4;
  control h Frame.Hframe.Rr 2;
  control h Frame.Hframe.Rr 2;
  (* repeat of the same cumulative ack: harmless *)
  Alcotest.(check int) "no double release" 2
    (4 - Hdlc.Sender.in_window h.sender + 2 - 2);
  Alcotest.(check bool) "not failed" false (Hdlc.Sender.failed h.sender)

let test_modulo_wrap_window () =
  (* seq_bits = 3: after 8 frames the numbers wrap; the window arithmetic
     must keep working across the wrap *)
  let h = make ~window:4 () in
  offer_n h 12;
  control h Frame.Hframe.Rr 4;
  control h Frame.Hframe.Rr 0 (* = 8 mod 8: acknowledges 4..7 *);
  control h Frame.Hframe.Rr 4 (* = 12 mod 8: acknowledges the rest *);
  (* all 12 transmitted, numbers wrapping: 0..7 then 0..3 *)
  Alcotest.(check (list int)) "wrapped numbering"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 0; 1; 2; 3 ]
    (List.rev !(h.txed));
  Alcotest.(check int) "all released" 0 (Hdlc.Sender.backlog h.sender)

let suite =
  [
    Alcotest.test_case "window blocks at W" `Quick test_window_blocks_at_w;
    Alcotest.test_case "RR slides window" `Quick test_rr_slides_window;
    Alcotest.test_case "SREJ selective resend" `Quick test_srej_retransmits_selectively;
    Alcotest.test_case "REJ rolls back" `Quick test_rej_rolls_back;
    Alcotest.test_case "cumulative ack releases" `Quick test_cumulative_ack_releases_all;
    Alcotest.test_case "stale RR ignored" `Quick test_stale_rr_ignored;
    Alcotest.test_case "modulo wrap window" `Quick test_modulo_wrap_window;
  ]
