(* Integration tests: simulation-vs-model agreement and end-to-end
   cross-protocol comparisons — the claims the experiments rely on,
   asserted with tolerances so regressions fail loudly. *)

let test_lams_sim_matches_model_s_bar () =
  let cfg = { Experiments.Scenario.default with Experiments.Scenario.n_frames = 2000 } in
  let r =
    Experiments.Scenario.run cfg
      (Experiments.Scenario.Lams (Experiments.Scenario.default_lams_params cfg))
  in
  let m = r.Experiments.Scenario.metrics in
  let sim_s =
    float_of_int (m.Dlc.Metrics.iframes_sent + m.Dlc.Metrics.retransmissions)
    /. float_of_int (Dlc.Metrics.unique_delivered m)
  in
  let link = Experiments.Scenario.analytic_link cfg ~protocol_kind:`Lams in
  let model_s = Analysis.Lams_model.s_bar link in
  let ratio = sim_s /. model_s in
  if ratio < 0.9 || ratio > 1.1 then
    Alcotest.failf "s_bar sim %g vs model %g (ratio %g)" sim_s model_s ratio

let test_lams_sim_matches_model_holding () =
  let cfg = Experiments.Scenario.default in
  let params = Experiments.Scenario.default_lams_params cfg in
  let r = Experiments.Scenario.run cfg (Experiments.Scenario.Lams params) in
  let sim = Stats.Online.mean r.Experiments.Scenario.metrics.Dlc.Metrics.holding_time in
  let link = Experiments.Scenario.analytic_link cfg ~protocol_kind:`Lams in
  let model =
    Analysis.Lams_model.holding_time link ~i_cp:params.Lams_dlc.Params.w_cp
  in
  let ratio = sim /. model in
  if ratio < 0.85 || ratio > 1.15 then
    Alcotest.failf "holding sim %g vs model %g" sim model

let test_headline_speedup_in_simulation () =
  let cfg = { Experiments.Scenario.default with Experiments.Scenario.n_frames = 2000 } in
  let lams =
    Experiments.Scenario.run cfg
      (Experiments.Scenario.Lams (Experiments.Scenario.default_lams_params cfg))
  in
  let hdlc =
    Experiments.Scenario.run cfg
      (Experiments.Scenario.Hdlc (Experiments.Scenario.default_hdlc_params cfg))
  in
  Alcotest.(check bool) "both complete" true
    (lams.Experiments.Scenario.completed && hdlc.Experiments.Scenario.completed);
  let speedup =
    lams.Experiments.Scenario.efficiency /. hdlc.Experiments.Scenario.efficiency
  in
  if speedup < 3. then
    Alcotest.failf "expected LAMS >> SR-HDLC at high traffic, speedup %g" speedup

let test_gbn_worse_than_sr_in_simulation () =
  let cfg = { Experiments.Scenario.default with Experiments.Scenario.n_frames = 1000 } in
  let sr =
    Experiments.Scenario.run cfg
      (Experiments.Scenario.Hdlc (Experiments.Scenario.default_hdlc_params cfg))
  in
  let gbn_params =
    { (Experiments.Scenario.default_hdlc_params cfg) with
      Hdlc.Params.mode = Hdlc.Params.Go_back_n }
  in
  let gbn = Experiments.Scenario.run cfg (Experiments.Scenario.Hdlc gbn_params) in
  let sr_retx = sr.Experiments.Scenario.metrics.Dlc.Metrics.retransmissions in
  let gbn_retx = gbn.Experiments.Scenario.metrics.Dlc.Metrics.retransmissions in
  if gbn_retx <= sr_retx then
    Alcotest.failf "GBN retx %d should exceed SR retx %d" gbn_retx sr_retx

let test_sim_retransmission_rate_tracks_p_f () =
  let cfg =
    { Experiments.Scenario.default with Experiments.Scenario.ber = 3e-5; n_frames = 3000 }
  in
  let r =
    Experiments.Scenario.run cfg
      (Experiments.Scenario.Lams (Experiments.Scenario.default_lams_params cfg))
  in
  let m = r.Experiments.Scenario.metrics in
  let total = m.Dlc.Metrics.iframes_sent + m.Dlc.Metrics.retransmissions in
  let sim_p_r = float_of_int m.Dlc.Metrics.retransmissions /. float_of_int total in
  let link = Experiments.Scenario.analytic_link cfg ~protocol_kind:`Lams in
  let p_f = link.Analysis.Common.p_f in
  if Float.abs (sim_p_r -. p_f) > 0.25 *. p_f then
    Alcotest.failf "sim P_R %g vs P_F %g" sim_p_r p_f

let test_numbering_span_within_bound () =
  let cfg =
    { Experiments.Scenario.default with Experiments.Scenario.ber = 3e-5; n_frames = 3000 }
  in
  let params = Experiments.Scenario.default_lams_params cfg in
  let r = Experiments.Scenario.run cfg (Experiments.Scenario.Lams params) in
  let link = Experiments.Scenario.analytic_link cfg ~protocol_kind:`Lams in
  let bound =
    Analysis.Lams_model.numbering_size link ~i_cp:params.Lams_dlc.Params.w_cp
      ~c_depth:params.Lams_dlc.Params.c_depth
  in
  let pipe =
    Experiments.Scenario.rtt cfg /. 2. /. Experiments.Scenario.t_f cfg
  in
  let span = float_of_int r.Experiments.Scenario.span_peak in
  if span > bound +. pipe then
    Alcotest.failf "span %g exceeds bound %g + pipe %g" span bound pipe

let test_burst_channel_zero_loss () =
  let burst =
    {
      Experiments.Scenario.ber_good = 1e-7;
      ber_bad = 1e-3;
      mean_burst_bits = 40. *. 8296.;
      mean_gap_bits = 400. *. 8296.;
    }
  in
  let cfg =
    {
      Experiments.Scenario.default with
      Experiments.Scenario.burst = Some burst;
      n_frames = 1000;
      horizon = 120.;
    }
  in
  let r =
    Experiments.Scenario.run cfg
      (Experiments.Scenario.Lams (Experiments.Scenario.default_lams_params cfg))
  in
  Alcotest.(check bool) "completed through bursts" true r.Experiments.Scenario.completed;
  Alcotest.(check int) "zero loss" 0 (Dlc.Metrics.loss r.Experiments.Scenario.metrics)

let test_fec_pipeline_with_channel_errors () =
  (* bit-level integration: conv+interleaver code over a Gilbert-Elliott
     bit pattern applied directly to the coded stream; moderate bursts
     within interleaver reach are corrected *)
  let rng = Sim.Rng.create ~seed:8 in
  let il = Fec.Interleaver.create ~rows:16 ~cols:32 in
  let code = Fec.Code.with_interleaver il Fec.Code.conv_default in
  let data = String.init 64 (fun i -> Char.chr (33 + (i mod 90))) in
  let src = Fec.Bitbuf.of_string data in
  let data_bits = Fec.Bitbuf.length src in
  let ok = ref 0 in
  let trials = 20 in
  for _ = 1 to trials do
    let tx = code.Fec.Code.encode src in
    (* inject one burst of <= 8 errors at a random offset *)
    let n = Fec.Bitbuf.length tx in
    let start = Sim.Rng.int rng (n - 8) in
    for b = start to start + 7 do
      Fec.Bitbuf.set tx b (not (Fec.Bitbuf.get tx b))
    done;
    let decoded = code.Fec.Code.decode tx ~data_bits in
    if Fec.Bitbuf.equal src decoded then incr ok
  done;
  if !ok < trials then
    Alcotest.failf "interleaved FEC corrected only %d/%d bursts" !ok trials

let test_deterministic_replay () =
  (* identical seeds must give bit-identical metrics across protocols --
     the property every regression comparison in this repo leans on *)
  let run protocol =
    let cfg = { Experiments.Scenario.default with Experiments.Scenario.n_frames = 500 } in
    let r = Experiments.Scenario.run cfg protocol in
    let m = r.Experiments.Scenario.metrics in
    ( m.Dlc.Metrics.iframes_sent,
      m.Dlc.Metrics.retransmissions,
      m.Dlc.Metrics.delivered,
      r.Experiments.Scenario.elapsed )
  in
  let lams () =
    run (Experiments.Scenario.Lams
           (Experiments.Scenario.default_lams_params Experiments.Scenario.default))
  in
  let hdlc () =
    run (Experiments.Scenario.Hdlc
           (Experiments.Scenario.default_hdlc_params Experiments.Scenario.default))
  in
  Alcotest.(check bool) "lams replay identical" true (lams () = lams ());
  Alcotest.(check bool) "hdlc replay identical" true (hdlc () = hdlc ())

let test_soak_50k_frames () =
  (* long-haul stability: 50k frames through a lossy link; zero loss,
     bounded buffers *)
  let base =
    {
      Experiments.Scenario.default with
      Experiments.Scenario.n_frames = 50_000;
      ber = 2e-5;
      horizon = 120.;
    }
  in
  let link0 = Experiments.Scenario.analytic_link base ~protocol_kind:`Lams in
  (* paced just under goodput so the buffer claim (not the open-loop
     dump) is what the soak exercises *)
  let rate =
    0.95 *. (1. -. link0.Analysis.Common.p_f) /. Experiments.Scenario.t_f base
  in
  let cfg = { base with Experiments.Scenario.traffic = `Rate rate } in
  let params = Experiments.Scenario.default_lams_params cfg in
  let r = Experiments.Scenario.run cfg (Experiments.Scenario.Lams params) in
  Alcotest.(check bool) "completed" true r.Experiments.Scenario.completed;
  Alcotest.(check int) "zero loss" 0 (Dlc.Metrics.loss r.Experiments.Scenario.metrics);
  Alcotest.(check int) "zero duplicates" 0
    r.Experiments.Scenario.metrics.Dlc.Metrics.duplicates;
  let link = Experiments.Scenario.analytic_link cfg ~protocol_kind:`Lams in
  let b_model =
    Analysis.Lams_model.transparent_buffer link ~i_cp:params.Lams_dlc.Params.w_cp
  in
  let peak = r.Experiments.Scenario.metrics.Dlc.Metrics.send_buffer_peak in
  if float_of_int peak > 2. *. b_model then
    Alcotest.failf "buffer peak %d far beyond transparent size %.0f" peak b_model

let test_frame_conservation () =
  (* accounting invariant across protocol and channel: every data frame
     the protocol counts as sent appears in the link's ledger, and every
     link-level fate (delivered, lost) adds up *)
  let engine = Sim.Engine.create () in
  let duplex =
    Channel.Duplex.create_static engine
      ~rng:(Sim.Rng.create ~seed:4)
      ~distance_m:2_000_000. ~data_rate_bps:100e6
      ~iframe_error:(Channel.Error_model.uniform ~ber:1e-4 ~frame_loss:0.01 ())
      ~cframe_error:(Channel.Error_model.uniform ~ber:1e-7 ())
  in
  let session =
    Lams_dlc.Session.create engine ~params:Lams_dlc.Params.default ~duplex
  in
  let dlc = Lams_dlc.Session.as_dlc session in
  dlc.Dlc.Session.set_on_deliver (fun ~payload:_ -> ());
  for i = 0 to 499 do
    ignore (dlc.Dlc.Session.offer (Workload.Arrivals.default_payload ~size:512 i) : bool)
  done;
  Sim.Engine.run engine ~until:60.;
  dlc.Dlc.Session.stop ();
  Sim.Engine.run engine;
  let m = dlc.Dlc.Session.metrics in
  let fwd = Channel.Link.stats duplex.Channel.Duplex.forward in
  Alcotest.(check int) "protocol sends = link sends"
    (m.Dlc.Metrics.iframes_sent + m.Dlc.Metrics.retransmissions)
    fwd.Channel.Link.frames_sent;
  Alcotest.(check int) "sent = delivered + lost"
    fwd.Channel.Link.frames_sent
    (fwd.Channel.Link.frames_delivered + fwd.Channel.Link.frames_lost);
  Alcotest.(check bool) "corrupted subset of delivered" true
    (fwd.Channel.Link.frames_corrupted <= fwd.Channel.Link.frames_delivered)

let test_experiment_registry () =
  Alcotest.(check int) "twenty-four experiments" 24
    (List.length Experiments.All.all);
  (match Experiments.All.find "E5" with
  | Some e -> Alcotest.(check string) "id" "e5" e.Experiments.All.id
  | None -> Alcotest.fail "E5 missing");
  Alcotest.(check bool) "unknown id" true (Experiments.All.find "nope" = None)

let suite =
  [
    Alcotest.test_case "sim matches model: s_bar" `Slow test_lams_sim_matches_model_s_bar;
    Alcotest.test_case "sim matches model: holding" `Slow
      test_lams_sim_matches_model_holding;
    Alcotest.test_case "headline speedup" `Slow test_headline_speedup_in_simulation;
    Alcotest.test_case "GBN worse than SR" `Slow test_gbn_worse_than_sr_in_simulation;
    Alcotest.test_case "sim P_R tracks P_F" `Slow test_sim_retransmission_rate_tracks_p_f;
    Alcotest.test_case "numbering span bound" `Slow test_numbering_span_within_bound;
    Alcotest.test_case "burst channel zero loss" `Slow test_burst_channel_zero_loss;
    Alcotest.test_case "FEC pipeline vs bursts" `Quick test_fec_pipeline_with_channel_errors;
    Alcotest.test_case "frame conservation" `Quick test_frame_conservation;
    Alcotest.test_case "deterministic replay" `Slow test_deterministic_replay;
    Alcotest.test_case "soak: 50k frames" `Slow test_soak_50k_frames;
    Alcotest.test_case "experiment registry" `Quick test_experiment_registry;
  ]
