(* LAMS-DLC protocol tests: parameter validation, delivery invariants,
   error recovery, flow control, enforced recovery and failure
   detection. *)

let ok_or_fail = function
  | Ok p -> p
  | Error e -> Alcotest.failf "unexpected validation error: %s" e

let test_params_validation () =
  ignore (ok_or_fail (Lams_dlc.Params.validate Lams_dlc.Params.default));
  let bad w_cp = { Lams_dlc.Params.default with Lams_dlc.Params.w_cp } in
  (match Lams_dlc.Params.validate (bad 0.) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "w_cp = 0 accepted");
  (match
     Lams_dlc.Params.validate
       { Lams_dlc.Params.default with Lams_dlc.Params.c_depth = 0 }
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "c_depth = 0 accepted");
  (match
     Lams_dlc.Params.validate
       { Lams_dlc.Params.default with Lams_dlc.Params.rate_decrease_factor = 1.5 }
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rate factor > 1 accepted")

let test_params_derived () =
  let p = { Lams_dlc.Params.default with Lams_dlc.Params.w_cp = 0.01; c_depth = 4 } in
  Alcotest.(check (float 1e-12)) "checkpoint timeout" 0.04
    (Lams_dlc.Params.checkpoint_timeout p);
  Alcotest.(check (float 1e-12)) "resolving period" (0.1 +. 0.005 +. 0.04)
    (Lams_dlc.Params.resolving_period p ~rtt:0.1)

let test_clean_link_delivery () =
  let t, _session = Proto_harness.lams () in
  Proto_harness.offer_all t 100;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_exactly_once t 100

let test_lossy_link_zero_loss () =
  let t, _session = Proto_harness.lams ~ber:1e-4 ~cber:1e-6 () in
  Proto_harness.offer_all t 500;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_exactly_once t 500;
  Alcotest.(check int) "metrics agree" 0 (Dlc.Metrics.loss t.Proto_harness.dlc.Dlc.Session.metrics)

let test_retransmissions_happen () =
  let t, _session = Proto_harness.lams ~ber:1e-4 () in
  Proto_harness.offer_all t 500;
  Proto_harness.run_to_completion t;
  let m = t.Proto_harness.dlc.Dlc.Session.metrics in
  Alcotest.(check bool) "some retransmissions" true (m.Dlc.Metrics.retransmissions > 0)

let test_no_spurious_retransmissions_on_clean_link () =
  let t, _session = Proto_harness.lams () in
  Proto_harness.offer_all t 200;
  Proto_harness.run_to_completion t;
  let m = t.Proto_harness.dlc.Dlc.Session.metrics in
  Alcotest.(check int) "no retransmissions" 0 m.Dlc.Metrics.retransmissions;
  Alcotest.(check int) "no duplicates" 0 m.Dlc.Metrics.duplicates;
  Alcotest.(check int) "no enforced recoveries" 0 m.Dlc.Metrics.enforced_recoveries

let test_all_frames_released () =
  let t, session = Proto_harness.lams ~ber:1e-4 () in
  Proto_harness.offer_all t 300;
  Proto_harness.run_to_completion t;
  ignore session;
  let m = t.Proto_harness.dlc.Dlc.Session.metrics in
  (* every offered frame is eventually released from the sending buffer
     (the last few can be pending the final checkpoint when we stop) *)
  Alcotest.(check bool) "released most frames" true (m.Dlc.Metrics.released >= 295)

let test_sequence_numbers_strictly_increase () =
  (* receiver-side check: arrival seqs on a FIFO link never decrease,
     because retransmissions are renumbered *)
  let engine = Sim.Engine.create () in
  let duplex = Proto_harness.make_duplex ~ber:1e-4 engine in
  let session = Lams_dlc.Session.create engine ~params:Lams_dlc.Params.default ~duplex in
  let receiver = Lams_dlc.Session.receiver session in
  let last = ref (-1) in
  let orig = Channel.Duplex.(duplex.forward) in
  Channel.Link.set_receiver orig (fun rx ->
      (match (rx.Channel.Link.frame, rx.Channel.Link.status) with
      | Frame.Wire.Data i, (Channel.Link.Rx_ok | Channel.Link.Rx_payload_corrupt) ->
          if i.Frame.Iframe.seq <= !last then
            Alcotest.failf "seq %d after %d" i.Frame.Iframe.seq !last;
          last := i.Frame.Iframe.seq
      | _ -> ());
      Lams_dlc.Receiver.on_rx receiver rx);
  let dlc = Lams_dlc.Session.as_dlc session in
  for i = 0 to 299 do
    ignore (dlc.Dlc.Session.offer (Proto_harness.payload i) : bool)
  done;
  Sim.Engine.run engine ~until:30.;
  dlc.Dlc.Session.stop ();
  Sim.Engine.run engine

let test_holding_time_bounded_by_resolving_period () =
  let params = Lams_dlc.Params.default in
  let distance = 1_000_000. in
  let t, _session = Proto_harness.lams ~ber:1e-4 ~distance ~params () in
  Proto_harness.offer_all t 500;
  Proto_harness.run_to_completion t;
  let m = t.Proto_harness.dlc.Dlc.Session.metrics in
  let rtt = 2. *. distance /. Channel.Link.speed_of_light in
  let resolving = Lams_dlc.Params.resolving_period params ~rtt in
  (* each individual *transmission* resolves within the resolving period;
     a frame whose retransmission is itself retransmitted holds longer,
     so allow a small multiple *)
  let bound = 4. *. resolving in
  let worst = Stats.Online.max m.Dlc.Metrics.holding_time in
  if worst > bound then
    Alcotest.failf "holding %g exceeds 4x resolving period %g" worst bound

let test_duplicates_none_without_failure () =
  let t, _session = Proto_harness.lams ~ber:3e-4 ~cber:1e-5 ~seed:99 () in
  Proto_harness.offer_all t 400;
  Proto_harness.run_to_completion t;
  let m = t.Proto_harness.dlc.Dlc.Session.metrics in
  Alcotest.(check int) "no duplicate deliveries" 0 m.Dlc.Metrics.duplicates

let test_checkpoint_loss_recovery_depth1 () =
  (* c_depth = 1 with a noisy control channel: every erroneous frame gets
     exactly one NAK chance; checkpoint losses must be absorbed by
     enforced recovery with zero loss *)
  let params =
    { Lams_dlc.Params.default with Lams_dlc.Params.c_depth = 1; w_cp = 1e-3 }
  in
  let t, _session = Proto_harness.lams ~ber:1e-4 ~cber:2e-4 ~seed:5 ~params () in
  Proto_harness.offer_all t 400;
  Proto_harness.run_to_completion t ~horizon:120.;
  Proto_harness.delivered_exactly_once t 400

let test_blackout_recovery () =
  let params = { Lams_dlc.Params.default with Lams_dlc.Params.w_cp = 1e-3 } in
  let t, session = Proto_harness.lams ~ber:1e-5 ~params () in
  (* blackout from 5 ms to 15 ms; recovery headroom is ample *)
  ignore
    (Sim.Engine.schedule t.Proto_harness.engine ~delay:0.005 (fun () ->
         Channel.Duplex.set_down t.Proto_harness.duplex));
  ignore
    (Sim.Engine.schedule t.Proto_harness.engine ~delay:0.015 (fun () ->
         Channel.Duplex.set_up t.Proto_harness.duplex));
  Proto_harness.offer_all t 2000;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_at_least_once t 2000;
  let sender = Lams_dlc.Session.sender session in
  Alcotest.(check bool) "not failed" false (Lams_dlc.Sender.failed sender);
  Alcotest.(check bool) "recovered (not halted)" false (Lams_dlc.Sender.halted sender);
  Alcotest.(check bool) "enforced recovery ran" true
    (t.Proto_harness.dlc.Dlc.Session.metrics.Dlc.Metrics.enforced_recoveries > 0)

let test_permanent_blackout_declares_failure () =
  let params = { Lams_dlc.Params.default with Lams_dlc.Params.w_cp = 1e-3 } in
  let t, session = Proto_harness.lams ~params () in
  ignore
    (Sim.Engine.schedule t.Proto_harness.engine ~delay:0.005 (fun () ->
         Channel.Duplex.set_down t.Proto_harness.duplex));
  Proto_harness.offer_all t 1000;
  let failure_seen = ref false in
  Lams_dlc.Sender.set_on_failure (Lams_dlc.Session.sender session) (fun () ->
      failure_seen := true);
  Proto_harness.run_to_completion t ~horizon:10.;
  Alcotest.(check bool) "failure declared" true !failure_seen;
  Alcotest.(check bool) "sender reports failed" true
    (Lams_dlc.Sender.failed (Lams_dlc.Session.sender session));
  (* after failure, offers are refused *)
  Alcotest.(check bool) "offers refused after failure" false
    (t.Proto_harness.dlc.Dlc.Session.offer "late")

let test_link_lifetime_gate () =
  (* recovery that cannot complete within the link lifetime fails fast *)
  let params =
    {
      Lams_dlc.Params.default with
      Lams_dlc.Params.w_cp = 1e-3;
      link_lifetime_end = Some 0.012;
    }
  in
  let t, session = Proto_harness.lams ~params () in
  ignore
    (Sim.Engine.schedule t.Proto_harness.engine ~delay:0.005 (fun () ->
         Channel.Duplex.set_down t.Proto_harness.duplex));
  Proto_harness.offer_all t 100;
  Proto_harness.run_to_completion t ~horizon:1.;
  Alcotest.(check bool) "failed within lifetime" true
    (Lams_dlc.Sender.failed (Lams_dlc.Session.sender session));
  Alcotest.(check int) "no request-NAK sent (unreachable)" 0
    t.Proto_harness.dlc.Dlc.Session.metrics.Dlc.Metrics.enforced_recoveries

let test_stop_go_flow_control () =
  (* a receiver draining slower than the link forces Stop: the sender's
     rate factor must fall below 1 *)
  let params =
    {
      Lams_dlc.Params.default with
      Lams_dlc.Params.recv_drain_rate = Some 2000.;
      recv_high_watermark = 50;
      recv_low_watermark = 10;
      w_cp = 1e-3;
    }
  in
  let t, session = Proto_harness.lams ~params () in
  Proto_harness.offer_all t 2000;
  Sim.Engine.run t.Proto_harness.engine ~until:0.2;
  let sender = Lams_dlc.Session.sender session in
  Alcotest.(check bool) "rate factor reduced" true
    (Lams_dlc.Sender.rate_factor sender < 1.);
  let receiver = Lams_dlc.Session.receiver session in
  Alcotest.(check bool) "receiver signalled stop at some point" true
    (Lams_dlc.Receiver.stop_state receiver
    || Lams_dlc.Receiver.queue_length receiver >= 0);
  t.Proto_harness.dlc.Dlc.Session.stop ();
  Sim.Engine.run t.Proto_harness.engine

let test_buffer_capacity_refusal () =
  let params =
    { Lams_dlc.Params.default with Lams_dlc.Params.send_buffer_capacity = 10 }
  in
  let t, _session = Proto_harness.lams ~distance:10_000_000. ~params () in
  let accepted = ref 0 in
  for i = 0 to 99 do
    if t.Proto_harness.dlc.Dlc.Session.offer (Proto_harness.payload i) then
      incr accepted
  done;
  Alcotest.(check int) "exactly capacity accepted" 10 !accepted;
  Alcotest.(check int) "refusals recorded" 90
    t.Proto_harness.dlc.Dlc.Session.metrics.Dlc.Metrics.refused;
  t.Proto_harness.dlc.Dlc.Session.stop ();
  Sim.Engine.run t.Proto_harness.engine

let test_out_of_order_delivery_possible () =
  (* with errors, LAMS-DLC may deliver out of order: verify the receiver
     does NOT reorder (the whole point of relaxing in-sequence) *)
  let t, _session = Proto_harness.lams ~ber:3e-4 ~seed:11 () in
  Proto_harness.offer_all t 500;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_exactly_once t 500;
  let order = List.rev t.Proto_harness.delivery_order in
  let sorted = List.sort compare order in
  Alcotest.(check bool) "some reordering occurred" true (order <> sorted)

let test_drain_unresolved_after_failure () =
  (* permanent blackout: the union of delivered payloads and the drained
     buffer must cover every offer, and nothing marked Not_delivered may
     actually have been delivered — the §3.3 handoff guarantee *)
  let params = { Lams_dlc.Params.default with Lams_dlc.Params.w_cp = 1e-3 } in
  let t, session = Proto_harness.lams ~ber:1e-4 ~params ~seed:17 () in
  ignore
    (Sim.Engine.schedule t.Proto_harness.engine ~delay:0.01 (fun () ->
         Channel.Duplex.set_down t.Proto_harness.duplex));
  (* 1 kB payloads: serialisation is slow enough that the blackout halts
     the sender while frames still wait in the fresh queue *)
  let big_payload i = Workload.Arrivals.default_payload ~size:1024 i in
  for i = 0 to 1499 do
    if not (t.Proto_harness.dlc.Dlc.Session.offer (big_payload i)) then
      Alcotest.failf "offer %d refused" i
  done;
  Proto_harness.run_to_completion t ~horizon:5.;
  let sender = Lams_dlc.Session.sender session in
  Alcotest.(check bool) "failed" true (Lams_dlc.Sender.failed sender);
  let drained = Lams_dlc.Sender.drain_unresolved sender in
  Alcotest.(check int) "buffer emptied" 0 (Lams_dlc.Sender.backlog sender);
  let handed = Hashtbl.create 64 in
  List.iter
    (fun u ->
      Hashtbl.replace handed u.Lams_dlc.Sender.payload u.Lams_dlc.Sender.verdict)
    drained;
  let suspicious = ref 0 and not_delivered = ref 0 in
  for i = 0 to 1499 do
    let p = big_payload i in
    let delivered = Hashtbl.mem t.Proto_harness.delivered p in
    match Hashtbl.find_opt handed p with
    | Some `Suspicious -> incr suspicious
    | Some `Not_delivered ->
        incr not_delivered;
        if delivered then
          Alcotest.failf "payload %d marked Not_delivered but was delivered" i
    | None ->
        if not delivered then Alcotest.failf "payload %d lost entirely" i
  done;
  Alcotest.(check bool) "some frames were suspicious" true (!suspicious > 0);
  Alcotest.(check bool) "some frames were definitely undelivered" true
    (!not_delivered > 0)

let test_request_nak_backoff_pins () =
  (* w_cp = 1 ms, c_depth = 3 -> checkpoint_timeout 3 ms; attempt k
     waits 2^k times that *)
  let params =
    { Lams_dlc.Params.default with Lams_dlc.Params.w_cp = 1e-3; c_depth = 3 }
  in
  let check_backoff k expect =
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "attempt %d" k)
      expect
      (Lams_dlc.Params.request_nak_backoff params ~attempt:k)
  in
  check_backoff 0 3e-3;
  check_backoff 1 6e-3;
  check_backoff 2 12e-3;
  check_backoff 3 24e-3;
  (* the exponent clamps: huge attempt counts stay finite *)
  Alcotest.(check bool) "clamped attempts finite" true
    (Float.is_finite (Lams_dlc.Params.request_nak_backoff params ~attempt:10_000));
  Alcotest.check_raises "negative attempt rejected"
    (Invalid_argument "request_nak_backoff: negative attempt") (fun () ->
      ignore (Lams_dlc.Params.request_nak_backoff params ~attempt:(-1) : float));
  (* retries = 2, response = 2 ms: bound = 3*2 + (3 + 6 + 12) = 27 ms *)
  let params = { params with Lams_dlc.Params.request_nak_retries = 2 } in
  Alcotest.(check (float 1e-12)) "declaration bound" 27e-3
    (Lams_dlc.Params.failure_declaration_bound params ~response:2e-3)

let prop_backoff_within_declaration_bound =
  QCheck2.Test.make
    ~name:"total request-nak backoff bounded by failure declaration" ~count:300
    QCheck2.Gen.(
      triple (int_range 1 1000) (int_range 0 40) (int_range 0 500))
    (fun (w_cp_tenths_ms, retries, response_tenths_ms) ->
      let params =
        {
          Lams_dlc.Params.default with
          Lams_dlc.Params.w_cp = float_of_int w_cp_tenths_ms *. 1e-4;
          request_nak_retries = retries;
        }
      in
      let response = float_of_int response_tenths_ms *. 1e-4 in
      let bound = Lams_dlc.Params.failure_declaration_bound params ~response in
      (* the sum every attempt actually waits (backoff plus a response
         window each) never exceeds the declared bound, the bound is
         finite, and each attempt waits exactly twice the previous one
         below the clamp *)
      let total = ref 0. in
      let doubling = ref true in
      for k = 0 to retries do
        let b = Lams_dlc.Params.request_nak_backoff params ~attempt:k in
        if k > 0 && k <= 60 then
          doubling :=
            !doubling
            && Float.abs
                 (b -. (2. *. Lams_dlc.Params.request_nak_backoff params ~attempt:(k - 1)))
               <= 1e-15 *. b;
        total := !total +. response +. b
      done;
      Float.is_finite bound && !doubling && !total <= bound *. (1. +. 1e-12))

let prop_zero_loss_across_seeds =
  QCheck2.Test.make ~name:"zero loss for any seed and error rate" ~count:25
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 30))
    (fun (seed, ber_scale) ->
      let ber = float_of_int ber_scale *. 1e-5 in
      let t, _session = Proto_harness.lams ~seed ~ber ~cber:(ber /. 10.) () in
      Proto_harness.offer_all t 120;
      Proto_harness.run_to_completion t ~horizon:120.;
      let ok = ref true in
      for i = 0 to 119 do
        if not (Hashtbl.mem t.Proto_harness.delivered (Proto_harness.payload i))
        then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "params validation" `Quick test_params_validation;
    Alcotest.test_case "params derived" `Quick test_params_derived;
    Alcotest.test_case "clean link delivery" `Quick test_clean_link_delivery;
    Alcotest.test_case "lossy link zero loss" `Quick test_lossy_link_zero_loss;
    Alcotest.test_case "retransmissions happen" `Quick test_retransmissions_happen;
    Alcotest.test_case "clean link: no spurious retx" `Quick
      test_no_spurious_retransmissions_on_clean_link;
    Alcotest.test_case "all frames released" `Quick test_all_frames_released;
    Alcotest.test_case "seqnums strictly increase" `Quick
      test_sequence_numbers_strictly_increase;
    Alcotest.test_case "holding bounded" `Quick
      test_holding_time_bounded_by_resolving_period;
    Alcotest.test_case "no duplicates without failure" `Quick
      test_duplicates_none_without_failure;
    Alcotest.test_case "c_depth=1 checkpoint-loss recovery" `Quick
      test_checkpoint_loss_recovery_depth1;
    Alcotest.test_case "blackout recovery" `Quick test_blackout_recovery;
    Alcotest.test_case "permanent blackout fails" `Quick
      test_permanent_blackout_declares_failure;
    Alcotest.test_case "link lifetime gate" `Quick test_link_lifetime_gate;
    Alcotest.test_case "stop-go flow control" `Quick test_stop_go_flow_control;
    Alcotest.test_case "buffer capacity refusal" `Quick test_buffer_capacity_refusal;
    Alcotest.test_case "out-of-order delivery" `Quick
      test_out_of_order_delivery_possible;
    Alcotest.test_case "drain after failure" `Quick
      test_drain_unresolved_after_failure;
    Alcotest.test_case "request-nak backoff pins" `Quick
      test_request_nak_backoff_pins;
    QCheck_alcotest.to_alcotest prop_backoff_within_declaration_bound;
    QCheck_alcotest.to_alcotest prop_zero_loss_across_seeds;
  ]
