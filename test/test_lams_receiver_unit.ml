(* Unit-level LAMS-DLC receiver tests: synthetic arrivals in, emitted
   checkpoint commands out. These pin down the NAK state machine (gap
   detection, cumulation window, enforced replay) without a sender in the
   loop. *)

type harness = {
  engine : Sim.Engine.t;
  receiver : Lams_dlc.Receiver.t;
  sent : Frame.Cframe.checkpoint list ref;  (* newest first *)
}

let make ?(w_cp = 1e-3) ?(c_depth = 3) () =
  let engine = Sim.Engine.create () in
  (* reverse link: captures what the receiver emits *)
  let reverse =
    Channel.Link.create_static engine
      ~rng:(Sim.Rng.create ~seed:1)
      ~distance_m:1000. ~data_rate_bps:1e9
      ~iframe_error:Channel.Error_model.perfect
      ~cframe_error:Channel.Error_model.perfect
  in
  let sent = ref [] in
  Channel.Link.set_tap reverse (fun ev ->
      match ev with
      | Channel.Link.Tap_tx (Frame.Wire.Control (Frame.Cframe.Checkpoint cp)) ->
          sent := cp :: !sent
      | _ -> ());
  Channel.Link.set_receiver reverse (fun _ -> ());
  let params =
    { Lams_dlc.Params.default with Lams_dlc.Params.w_cp; c_depth }
  in
  let receiver =
    Lams_dlc.Receiver.create engine ~params ~reverse
      ~metrics:(Dlc.Metrics.create ()) ~probe:(Dlc.Probe.create ())
  in
  { engine; receiver; sent }

let arrive h ?(status = Channel.Link.Rx_ok) seq =
  Lams_dlc.Receiver.on_rx h.receiver
    {
      Channel.Link.frame =
        Frame.Wire.Data (Frame.Iframe.create ~seq ~payload:"unit");
      status;
      t_sent = Sim.Engine.now h.engine;
    }

let run_for h dt = Sim.Engine.run h.engine ~until:(Sim.Engine.now h.engine +. dt)

let latest_cp h =
  match !(h.sent) with
  | cp :: _ -> cp
  | [] -> Alcotest.fail "no checkpoint emitted"

let test_clean_stream_empty_naks () =
  let h = make () in
  arrive h 0;
  arrive h 1;
  arrive h 2;
  run_for h 1.5e-3;
  let cp = latest_cp h in
  Alcotest.(check (list int)) "no naks" [] cp.Frame.Cframe.naks;
  Alcotest.(check int) "frontier" 3 cp.Frame.Cframe.next_expected

let test_gap_is_naked () =
  let h = make () in
  arrive h 0;
  arrive h 3;
  (* 1 and 2 skipped *)
  run_for h 1.5e-3;
  let cp = latest_cp h in
  Alcotest.(check (list int)) "gap naks" [ 1; 2 ] cp.Frame.Cframe.naks;
  Alcotest.(check int) "frontier past the gap" 4 cp.Frame.Cframe.next_expected

let test_payload_corrupt_naked_and_frontier_advances () =
  let h = make () in
  arrive h 0;
  arrive h ~status:Channel.Link.Rx_payload_corrupt 1;
  arrive h 2;
  run_for h 1.5e-3;
  let cp = latest_cp h in
  Alcotest.(check (list int)) "corrupt frame naked" [ 1 ] cp.Frame.Cframe.naks;
  Alcotest.(check int) "frontier includes it" 3 cp.Frame.Cframe.next_expected

let test_header_corrupt_invisible_until_gap () =
  let h = make () in
  arrive h 0;
  arrive h ~status:Channel.Link.Rx_header_corrupt 1;
  run_for h 1.5e-3;
  (* the unidentifiable arrival alone reveals nothing *)
  Alcotest.(check (list int)) "nothing to nak yet" []
    (latest_cp h).Frame.Cframe.naks;
  (* a later identifiable frame reveals the hole *)
  arrive h 2;
  run_for h 1e-3;
  Alcotest.(check (list int)) "gap detected now" [ 1 ]
    (latest_cp h).Frame.Cframe.naks

let test_cumulation_depth_exactly_c_checkpoints () =
  let h = make ~c_depth:3 () in
  arrive h 0;
  arrive h 2;
  (* seq 1 missing: it must appear in exactly 3 consecutive checkpoints *)
  run_for h 4.5e-3;
  (* >= 4 checkpoints have fired by now *)
  let with_nak =
    List.filter (fun cp -> List.mem 1 cp.Frame.Cframe.naks) !(h.sent)
  in
  Alcotest.(check int) "reported exactly c_depth times" 3 (List.length with_nak)

let test_enforced_nak_replays_old_errors () =
  let h = make ~c_depth:2 () in
  arrive h 0;
  arrive h 5;
  (* errors 1-4 recorded *)
  run_for h 10e-3;
  (* far beyond the cumulation window: regular checkpoints no longer
     carry them *)
  Alcotest.(check (list int)) "window expired" [] (latest_cp h).Frame.Cframe.naks;
  (* a Request-NAK forces the complete log back out *)
  Lams_dlc.Receiver.on_rx h.receiver
    {
      Channel.Link.frame =
        Frame.Wire.Control (Frame.Cframe.request_nak ~issue_time:0.);
      status = Channel.Link.Rx_ok;
      t_sent = 0.;
    };
  run_for h 1e-4;
  (* a regular checkpoint may interleave; find the enforced answer *)
  match List.find_opt (fun cp -> cp.Frame.Cframe.enforced) !(h.sent) with
  | None -> Alcotest.fail "no enforced checkpoint emitted"
  | Some cp ->
      Alcotest.(check (list int)) "full log replayed" [ 1; 2; 3; 4 ]
        cp.Frame.Cframe.naks

let test_duplicate_arrival_counted () =
  let h = make () in
  arrive h 0;
  arrive h 1;
  arrive h 0;
  (* impossible on a FIFO link; receiver tolerates and counts it *)
  Alcotest.(check int) "frontier unchanged" 2
    (Lams_dlc.Receiver.next_expected h.receiver);
  run_for h 1.5e-3;
  Alcotest.(check (list int)) "no naks" [] (latest_cp h).Frame.Cframe.naks

let test_checkpoint_cadence () =
  let h = make ~w_cp:1e-3 () in
  run_for h 10.5e-3;
  Alcotest.(check int) "one checkpoint per interval" 10
    (Lams_dlc.Receiver.checkpoints_sent h.receiver);
  Lams_dlc.Receiver.stop h.receiver;
  Sim.Engine.run h.engine;
  Alcotest.(check int) "stop halts the schedule" 10
    (Lams_dlc.Receiver.checkpoints_sent h.receiver)

let suite =
  [
    Alcotest.test_case "clean stream: empty naks" `Quick test_clean_stream_empty_naks;
    Alcotest.test_case "gap is NAKed" `Quick test_gap_is_naked;
    Alcotest.test_case "payload corrupt NAKed" `Quick
      test_payload_corrupt_naked_and_frontier_advances;
    Alcotest.test_case "header corrupt via gap" `Quick
      test_header_corrupt_invisible_until_gap;
    Alcotest.test_case "cumulation = c_depth reports" `Quick
      test_cumulation_depth_exactly_c_checkpoints;
    Alcotest.test_case "enforced replays full log" `Quick
      test_enforced_nak_replays_old_errors;
    Alcotest.test_case "duplicate arrival tolerated" `Quick
      test_duplicate_arrival_counted;
    Alcotest.test_case "checkpoint cadence" `Quick test_checkpoint_cadence;
  ]
