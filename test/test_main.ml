(* Aggregate test runner: one alcotest section per module under test. *)

let () =
  Alcotest.run "lams-dlc-repro"
    [
      ("rng", Test_rng.suite);
      ("event-queue", Test_event_queue.suite);
      ("engine", Test_engine.suite);
      ("stats", Test_stats.suite);
      ("seqnum", Test_seqnum.suite);
      ("crc", Test_crc.suite);
      ("codec", Test_codec.suite);
      ("fec", Test_fec.suite);
      ("reed-solomon", Test_reed_solomon.suite);
      ("channel", Test_channel.suite);
      ("channel-model", Test_channel_model.suite);
      ("orbit", Test_orbit.suite);
      ("dlc-metrics", Test_dlc.suite);
      ("lams-dlc", Test_lams_dlc.suite);
      ("lams-receiver-unit", Test_lams_receiver_unit.suite);
      ("hdlc", Test_hdlc.suite);
      ("hdlc-receiver-unit", Test_hdlc_receiver_unit.suite);
      ("hdlc-sender-unit", Test_hdlc_sender_unit.suite);
      ("nbdt", Test_nbdt.suite);
      ("nbdt-receiver-unit", Test_nbdt_receiver_unit.suite);
      ("analysis", Test_analysis.suite);
      ("analysis-golden", Test_analysis_golden.suite);
      ("oracle", Test_oracle.suite);
      ("netstack", Test_netstack.suite);
      ("workload", Test_workload.suite);
      ("integration", Test_integration.suite);
      ("bench-report", Test_bench_report.suite);
      ("runner", Test_runner.suite);
      ("trace", Test_trace.suite);
      ("matrix-soak", Test_matrix_soak.suite);
      ("handover", Test_handover.suite);
      ("corrupt", Test_corrupt.suite);
      ("corrupt-soak", Test_corrupt_soak.suite);
      ("feedback", Test_feedback.suite);
    ]
