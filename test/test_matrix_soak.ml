(* Oracle soak: replicated matrix runs with the protocol invariant
   checker subscribed to every replicate.

   Two stress scenarios from the experiment set, each driven through
   Runner.run with multiple replicates and workers:
   - E7-style ablation: elevated control-frame BER plus a seed-varied
     adversary dropping extra frames on both directions, across
     cumulation depths — checkpoint-loss recovery under fire;
   - E9-style blackout: both link directions down mid-transfer, across
     the enforced-recovery boundary.

   Every replicate runs with the oracle attached (matrix_point ~check or
   fault scripts force the checked path) and reports an
   [oracle_violations] metric; the fold must come back all-zero, and
   LAMS must keep its zero-loss guarantee on every replicate. *)

let stat ~(report : Bench_report.Matrix_report.t) ~point ~metric =
  match report.Bench_report.Matrix_report.experiments with
  | [ e ] -> (
      match
        List.find_opt
          (fun (p : Bench_report.Matrix_report.point) -> p.label = point)
          e.Bench_report.Matrix_report.points
      with
      | Some p -> (
          match List.assoc_opt metric p.Bench_report.Matrix_report.metrics with
          | Some s -> s
          | None -> Alcotest.failf "metric %s missing at %s" metric point)
      | None -> Alcotest.failf "point %s missing" point)
  | _ -> Alcotest.fail "expected one experiment"

let check_point ?(expect_zero_loss = true) ~report ~replicates ~point () =
  let v = stat ~report ~point ~metric:"oracle_violations" in
  Alcotest.(check int)
    (point ^ ": all replicates checked")
    replicates v.Bench_report.Matrix_report.count;
  Alcotest.(check (float 0.))
    (point ^ ": zero oracle violations on every replicate")
    0. v.Bench_report.Matrix_report.max;
  (* [loss] counts offered-but-undelivered frames, so it must be zero
     whenever the protocol keeps running; past the failure timer the
     sender gives up and retained frames show up here, so the long-
     blackout point only asserts the invariants, not delivery. *)
  if expect_zero_loss then
    let loss = stat ~report ~point ~metric:"loss" in
    Alcotest.(check (float 0.))
      (point ^ ": zero loss on every replicate")
      0. loss.Bench_report.Matrix_report.max

let test_ablation_soak () =
  (* E7's stress axis (frequent checkpoint losses) plus an adversary
     whose schedule varies per replicate but derives from the replicate
     seed — reproducible chaos on both link directions. *)
  let replicates = 2 in
  let cfg =
    {
      Experiments.Scenario.default with
      Experiments.Scenario.n_frames = 150;
      cframe_ber = 1e-4;
      horizon = 20.;
    }
  in
  let adversary ~seed =
    Channel.Fault.adversary ~seed ~p_iframe:0.05 ~p_control:0.05 ()
  in
  let points =
    List.map
      (fun c_depth ->
        let params =
          {
            (Experiments.Scenario.default_lams_params cfg) with
            Lams_dlc.Params.c_depth;
          }
        in
        Experiments.Scenario.matrix_point ~faults:adversary
          ~reverse_faults:adversary
          ~label:(Printf.sprintf "c_depth=%d" c_depth)
          cfg (Experiments.Scenario.Lams params))
      [ 1; 3 ]
  in
  let report =
    Runner.run ~jobs:2 ~root_seed:1009 ~replicates
      [ { Runner.id = "e7-soak"; name = "ablation soak"; points } ]
  in
  List.iter
    (fun c_depth ->
      check_point ~report ~replicates
        ~point:(Printf.sprintf "c_depth=%d" c_depth)
        ())
    [ 1; 3 ]

let test_blackout_soak () =
  (* E9's failure drill through the runner: a blackout short enough to
     recover from and one past the silence threshold, oracle watching
     the whole time. The zero-loss guarantee must hold either way —
     frames are retained, never lost, even when failure is declared. *)
  let replicates = 2 in
  let points =
    List.map
      (fun blackout_len ->
        let cfg =
          {
            Experiments.Scenario.default with
            Experiments.Scenario.n_frames = 400;
            horizon = 20.;
            blackout = Some (0.02, blackout_len);
          }
        in
        Experiments.Scenario.matrix_point ~check:true
          ~label:(Printf.sprintf "blackout=%g" blackout_len)
          cfg
          (Experiments.Scenario.Lams
             (Experiments.Scenario.default_lams_params cfg)))
      [ 0.02; 1.0 ]
  in
  let report =
    Runner.run ~jobs:2 ~root_seed:4242 ~replicates
      [ { Runner.id = "e9-soak"; name = "blackout soak"; points } ]
  in
  List.iter
    (fun blackout_len ->
      (* only the short blackout is inside the recovery envelope; the
         1 s one crosses the failure timer by design *)
      check_point ~report ~replicates
        ~expect_zero_loss:(blackout_len < 0.1)
        ~point:(Printf.sprintf "blackout=%g" blackout_len)
        ())
    [ 0.02; 1.0 ]

let suite =
  [
    Alcotest.test_case "e7-style adversary soak (oracle on)" `Slow
      test_ablation_soak;
    Alcotest.test_case "e9-style blackout soak (oracle on)" `Slow
      test_blackout_soak;
  ]
