(* Unit-level NBDT receiver tests: the (frontier, missing) invariant and
   report shape, including the capped-report frontier clamp. *)

type harness = {
  engine : Sim.Engine.t;
  receiver : Nbdt.Receiver.t;
  sent : Frame.Cframe.checkpoint list ref;  (* newest first *)
  delivered : int list ref;
}

let make ?(report_interval = 1e-3) ?(max_report_misses = 512) () =
  let engine = Sim.Engine.create () in
  let reverse =
    Channel.Link.create_static engine
      ~rng:(Sim.Rng.create ~seed:1)
      ~distance_m:1000. ~data_rate_bps:1e9
      ~iframe_error:Channel.Error_model.perfect
      ~cframe_error:Channel.Error_model.perfect
  in
  let sent = ref [] in
  Channel.Link.set_tap reverse (fun ev ->
      match ev with
      | Channel.Link.Tap_tx (Frame.Wire.Control (Frame.Cframe.Checkpoint cp)) ->
          sent := cp :: !sent
      | _ -> ());
  Channel.Link.set_receiver reverse (fun _ -> ());
  let params =
    { Nbdt.Params.default with Nbdt.Params.report_interval; max_report_misses }
  in
  let receiver =
    Nbdt.Receiver.create engine ~params ~reverse ~metrics:(Dlc.Metrics.create ())
      ~probe:(Dlc.Probe.create ())
  in
  let delivered = ref [] in
  Nbdt.Receiver.set_on_deliver receiver (fun ~payload:_ ~seq ->
      delivered := seq :: !delivered);
  { engine; receiver; sent; delivered }

let arrive h ?(status = Channel.Link.Rx_ok) seq =
  Nbdt.Receiver.on_rx h.receiver
    {
      Channel.Link.frame =
        Frame.Wire.Data (Frame.Iframe.create ~seq ~payload:"unit");
      status;
      t_sent = 0.;
    }

let run_for h dt = Sim.Engine.run h.engine ~until:(Sim.Engine.now h.engine +. dt)

let latest h =
  match !(h.sent) with
  | cp :: _ -> cp
  | [] -> Alcotest.fail "no report emitted"

let test_out_of_order_delivery_and_gap_tracking () =
  let h = make () in
  arrive h 0;
  arrive h 3;
  Alcotest.(check (list int)) "delivered as they come" [ 0; 3 ]
    (List.rev !(h.delivered));
  Alcotest.(check int) "frontier" 4 (Nbdt.Receiver.frontier h.receiver);
  Alcotest.(check int) "two missing" 2 (Nbdt.Receiver.missing_count h.receiver);
  run_for h 1.5e-3;
  let cp = latest h in
  Alcotest.(check (list int)) "report lists the gap" [ 1; 2 ] cp.Frame.Cframe.naks;
  Alcotest.(check int) "report frontier" 4 cp.Frame.Cframe.next_expected

let test_retransmission_fills_gap_same_number () =
  let h = make () in
  arrive h 0;
  arrive h 2;
  arrive h 1;
  (* absolute numbering: the retransmission reuses seq 1 *)
  Alcotest.(check int) "no missing left" 0 (Nbdt.Receiver.missing_count h.receiver);
  Alcotest.(check (list int)) "all delivered" [ 0; 2; 1 ] (List.rev !(h.delivered));
  run_for h 1.5e-3;
  Alcotest.(check (list int)) "clean report" [] (latest h).Frame.Cframe.naks

let test_duplicate_dropped () =
  let h = make () in
  arrive h 0;
  arrive h 0;
  Alcotest.(check (list int)) "delivered once" [ 0 ] (List.rev !(h.delivered))

let test_corrupt_stays_missing_until_clean_copy () =
  let h = make () in
  arrive h ~status:Channel.Link.Rx_payload_corrupt 0;
  Alcotest.(check int) "corrupt counted missing" 1
    (Nbdt.Receiver.missing_count h.receiver);
  arrive h ~status:Channel.Link.Rx_payload_corrupt 0;
  Alcotest.(check int) "still missing" 1 (Nbdt.Receiver.missing_count h.receiver);
  arrive h 0;
  Alcotest.(check int) "resolved" 0 (Nbdt.Receiver.missing_count h.receiver);
  Alcotest.(check (list int)) "delivered once" [ 0 ] (List.rev !(h.delivered))

let test_capped_report_clamps_frontier () =
  let h = make ~max_report_misses:3 () in
  arrive h 0;
  arrive h 10;
  (* 9 missing (1..9), cap 3: the report may only list 1,2,3 and must
     clamp its frontier to 4 so the sender cannot release 4..9 *)
  run_for h 1.5e-3;
  let cp = latest h in
  Alcotest.(check (list int)) "first three listed" [ 1; 2; 3 ] cp.Frame.Cframe.naks;
  Alcotest.(check int) "frontier clamped" 4 cp.Frame.Cframe.next_expected

let test_report_cadence_and_stop () =
  let h = make ~report_interval:1e-3 () in
  run_for h 5.5e-3;
  Alcotest.(check int) "five reports" 5 (Nbdt.Receiver.reports_sent h.receiver);
  Nbdt.Receiver.stop h.receiver;
  Sim.Engine.run h.engine;
  Alcotest.(check int) "stopped" 5 (Nbdt.Receiver.reports_sent h.receiver)

let suite =
  [
    Alcotest.test_case "out-of-order + gap tracking" `Quick
      test_out_of_order_delivery_and_gap_tracking;
    Alcotest.test_case "retransmission same number" `Quick
      test_retransmission_fills_gap_same_number;
    Alcotest.test_case "duplicate dropped" `Quick test_duplicate_dropped;
    Alcotest.test_case "corrupt stays missing" `Quick
      test_corrupt_stays_missing_until_clean_copy;
    Alcotest.test_case "capped report clamps frontier" `Quick
      test_capped_report_clamps_frontier;
    Alcotest.test_case "report cadence + stop" `Quick test_report_cadence_and_stop;
  ]
