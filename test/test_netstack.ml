(* Network stack tests: message fragmentation, resequencing and
   multi-hop store-and-forward delivery. *)

(* --- Messages --- *)

let frag = Alcotest.testable Workload.Messages.pp (fun a b ->
    a.Workload.Messages.msg_id = b.Workload.Messages.msg_id
    && a.Workload.Messages.src = b.Workload.Messages.src
    && a.Workload.Messages.dst = b.Workload.Messages.dst
    && a.Workload.Messages.index = b.Workload.Messages.index
    && a.Workload.Messages.count = b.Workload.Messages.count
    && String.equal a.Workload.Messages.body b.Workload.Messages.body)

let test_fragment_sizes () =
  let frags =
    Workload.Messages.fragment_message ~msg_id:1 ~src:0 ~dst:2 ~mtu:10
      "0123456789abcdefghij_tail"
  in
  Alcotest.(check int) "three fragments" 3 (List.length frags);
  List.iteri
    (fun i f ->
      Alcotest.(check int) "index" i f.Workload.Messages.index;
      Alcotest.(check int) "count" 3 f.Workload.Messages.count)
    frags;
  Alcotest.(check string) "tail content" "_tail"
    (List.nth frags 2).Workload.Messages.body

let test_fragment_empty_message () =
  match Workload.Messages.fragment_message ~msg_id:0 ~src:0 ~dst:1 ~mtu:10 "" with
  | [ f ] ->
      Alcotest.(check string) "empty body" "" f.Workload.Messages.body;
      Alcotest.(check int) "count 1" 1 f.Workload.Messages.count
  | _ -> Alcotest.fail "expected exactly one fragment"

let test_encode_decode () =
  let f =
    {
      Workload.Messages.msg_id = 7;
      src = 1;
      dst = 5;
      index = 2;
      count = 4;
      body = "body|with|pipes";
    }
  in
  match Workload.Messages.decode (Workload.Messages.encode f) with
  | Ok f' -> Alcotest.check frag "roundtrip" f f'
  | Error e -> Alcotest.failf "decode: %s" e

let test_decode_garbage () =
  (match Workload.Messages.decode "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  (match Workload.Messages.decode "M1|2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated accepted");
  match Workload.Messages.decode "M1|2|3|9|4|oops" with
  | Error _ -> () (* index >= count *)
  | Ok _ -> Alcotest.fail "inconsistent numbering accepted"

let prop_fragment_roundtrip =
  QCheck2.Test.make ~name:"fragment/encode/decode/reassemble = identity"
    ~count:200
    QCheck2.Gen.(pair (string_size ~gen:printable (int_range 0 500)) (int_range 1 64))
    (fun (body, mtu) ->
      let frags = Workload.Messages.fragment_message ~msg_id:3 ~src:0 ~dst:1 ~mtu body in
      let decoded =
        List.map
          (fun f ->
            match Workload.Messages.decode (Workload.Messages.encode f) with
            | Ok f' -> f'
            | Error e -> failwith e)
          frags
      in
      let reassembled =
        String.concat "" (List.map (fun f -> f.Workload.Messages.body) decoded)
      in
      String.equal reassembled body)

(* --- Resequencer --- *)

let test_resequencer_out_of_order () =
  let r = Netstack.Resequencer.create () in
  let got = ref [] in
  Netstack.Resequencer.set_on_message r (fun ~src ~msg_id ~body ->
      got := (src, msg_id, body) :: !got);
  let frags = Workload.Messages.fragment_message ~msg_id:9 ~src:4 ~dst:0 ~mtu:3 "abcdefgh" in
  List.iter (Netstack.Resequencer.push r) (List.rev frags);
  Alcotest.(check (list (triple int int string))) "one complete message"
    [ (4, 9, "abcdefgh") ] !got;
  Alcotest.(check int) "nothing pending" 0 (Netstack.Resequencer.pending_messages r)

let test_resequencer_dedup () =
  let r = Netstack.Resequencer.create () in
  let count = ref 0 in
  Netstack.Resequencer.set_on_message r (fun ~src:_ ~msg_id:_ ~body:_ -> incr count);
  let frags = Workload.Messages.fragment_message ~msg_id:1 ~src:0 ~dst:0 ~mtu:4 "0123456789" in
  List.iter (Netstack.Resequencer.push r) frags;
  List.iter (Netstack.Resequencer.push r) frags;
  Alcotest.(check int) "delivered once" 1 !count;
  Alcotest.(check int) "duplicates counted" 3 (Netstack.Resequencer.duplicates_dropped r);
  Alcotest.(check int) "completed" 1 (Netstack.Resequencer.completed r)

let test_resequencer_interleaved_messages () =
  let r = Netstack.Resequencer.create () in
  let got = ref [] in
  Netstack.Resequencer.set_on_message r (fun ~src:_ ~msg_id ~body -> got := (msg_id, body) :: !got);
  let f1 = Workload.Messages.fragment_message ~msg_id:1 ~src:0 ~dst:0 ~mtu:2 "aabb" in
  let f2 = Workload.Messages.fragment_message ~msg_id:2 ~src:0 ~dst:0 ~mtu:2 "ccdd" in
  (match (f1, f2) with
  | [ a1; a2 ], [ b1; b2 ] ->
      Netstack.Resequencer.push r a1;
      Netstack.Resequencer.push r b2;
      Alcotest.(check int) "two pending" 2 (Netstack.Resequencer.pending_messages r);
      Alcotest.(check int) "two fragments buffered" 2
        (Netstack.Resequencer.pending_fragments r);
      Netstack.Resequencer.push r b1;
      Netstack.Resequencer.push r a2
  | _ -> Alcotest.fail "bad fragmentation");
  Alcotest.(check (list (pair int string))) "both complete (msg2 first)"
    [ (2, "ccdd"); (1, "aabb") ] (List.rev !got)

let prop_resequencer_any_order_any_dups =
  QCheck2.Test.make ~name:"resequencer: any arrival order and duplication"
    ~count:200
    QCheck2.Gen.(pair (string_size ~gen:printable (int_range 1 80)) (int_range 1 9))
    (fun (body, mtu) ->
      let r = Netstack.Resequencer.create () in
      let out = ref None in
      Netstack.Resequencer.set_on_message r (fun ~src:_ ~msg_id:_ ~body ->
          out := Some body);
      let frags = Workload.Messages.fragment_message ~msg_id:5 ~src:1 ~dst:2 ~mtu body in
      (* push twice in reverse, once forward *)
      List.iter (Netstack.Resequencer.push r) (List.rev frags);
      List.iter (Netstack.Resequencer.push r) frags;
      !out = Some body)

(* A message id that already completed must never be delivered again:
   after an enforced recovery a whole message's fragments can arrive a
   second time (the paper's bounded-duplication re-routing case). *)
let test_resequencer_replay_after_completion () =
  let r = Netstack.Resequencer.create () in
  let count = ref 0 in
  Netstack.Resequencer.set_on_message r (fun ~src:_ ~msg_id:_ ~body:_ ->
      incr count);
  let frags =
    Workload.Messages.fragment_message ~msg_id:3 ~src:2 ~dst:0 ~mtu:4
      "0123456789"
  in
  List.iter (Netstack.Resequencer.push r) frags;
  Alcotest.(check int) "first pass delivers" 1 !count;
  (* full replay of the completed message *)
  List.iter (Netstack.Resequencer.push r) frags;
  Alcotest.(check int) "replay suppressed" 1 !count;
  Alcotest.(check int) "all replayed fragments counted as duplicates"
    (List.length frags)
    (Netstack.Resequencer.duplicates_dropped r);
  Alcotest.(check int) "no resurrected partial state" 0
    (Netstack.Resequencer.pending_messages r)

(* A gap that is never filled must never release the message: the
   destination buffers forever rather than deliver a hole. The network
   layer above decides when to give up (after the resolving period it
   re-routes with a definite verdict); the resequencer itself stays
   safe. *)
let test_resequencer_gap_never_releases () =
  let r = Netstack.Resequencer.create () in
  let count = ref 0 in
  Netstack.Resequencer.set_on_message r (fun ~src:_ ~msg_id:_ ~body:_ ->
      incr count);
  match
    Workload.Messages.fragment_message ~msg_id:8 ~src:0 ~dst:1 ~mtu:2
      "aabbcc"
  with
  | [ f0; _f1; f2 ] ->
      Netstack.Resequencer.push r f0;
      Netstack.Resequencer.push r f2;
      Netstack.Resequencer.push r f2;  (* duplicate of a buffered fragment *)
      Alcotest.(check int) "nothing delivered" 0 !count;
      Alcotest.(check int) "one message pending" 1
        (Netstack.Resequencer.pending_messages r);
      Alcotest.(check int) "two distinct fragments buffered" 2
        (Netstack.Resequencer.pending_fragments r);
      Alcotest.(check int) "duplicate of buffered fragment dropped" 1
        (Netstack.Resequencer.duplicates_dropped r)
  | _ -> Alcotest.fail "bad fragmentation"

(* Large msg_id values (wraparound of an upstream 16-bit counter would
   reuse ids — the resequencer treats ids as opaque, so reuse after
   completion deduplicates; distinct large ids stay distinct) *)
let test_resequencer_id_reuse_after_wraparound () =
  let r = Netstack.Resequencer.create () in
  let got = ref [] in
  Netstack.Resequencer.set_on_message r (fun ~src:_ ~msg_id ~body ->
      got := (msg_id, body) :: !got);
  let push_msg ~msg_id body =
    List.iter (Netstack.Resequencer.push r)
      (Workload.Messages.fragment_message ~msg_id ~src:1 ~dst:0 ~mtu:8 body)
  in
  push_msg ~msg_id:65_535 "before-wrap";
  push_msg ~msg_id:0 "after-wrap";
  (* a wrapped counter reusing id 65535 for NEW content is silently
     deduplicated — the documented cost of id reuse *)
  push_msg ~msg_id:65_535 "reused-id";
  Alcotest.(check (list (pair int string))) "reused id suppressed"
    [ (65_535, "before-wrap"); (0, "after-wrap") ]
    (List.rev !got)

(* Post-resequencer ordering invariant, checked by the oracle's stream
   checker: per source, completed messages come out in increasing
   msg_id order when the source emits them in order, however fragments
   interleave. *)
let prop_resequencer_stream_order =
  QCheck2.Test.make ~name:"completion order equals submission order"
    ~count:100
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      (* fragments of each message arrive in an arbitrary permutation
         (what a LAMS link with renumbered retransmissions produces),
         but messages themselves finish transit one after another; the
         resequencer must then complete them in strictly increasing
         msg_id order, which Oracle.Stream checks verbatim *)
      let rng = Sim.Rng.create ~seed in
      let r = Netstack.Resequencer.create () in
      let stream = Oracle.Stream.create ~name:"reseq" in
      Netstack.Resequencer.set_on_message r (fun ~src:_ ~msg_id ~body:_ ->
          Oracle.Stream.push stream ~now:0. msg_id);
      List.iter
        (fun id ->
          let frags =
            Array.of_list
              (Workload.Messages.fragment_message ~msg_id:id ~src:0 ~dst:1
                 ~mtu:3 (Printf.sprintf "message-%04d" id))
          in
          Sim.Rng.shuffle rng frags;
          Array.iter (Netstack.Resequencer.push r) frags)
        (List.init 20 Fun.id);
      Oracle.Stream.ok stream && Netstack.Resequencer.completed r = 20)

(* --- Network --- *)

let perfect_lams_link engine ~seed =
  let duplex =
    Channel.Duplex.create_static engine
      ~rng:(Sim.Rng.create ~seed)
      ~distance_m:1_000_000. ~data_rate_bps:100e6
      ~iframe_error:(Channel.Error_model.uniform ~ber:0. ())
      ~cframe_error:Channel.Error_model.perfect
  in
  duplex

let lossy_lams_link engine ~seed =
  Channel.Duplex.create_static engine
    ~rng:(Sim.Rng.create ~seed)
    ~distance_m:1_000_000. ~data_rate_bps:100e6
    ~iframe_error:(Channel.Error_model.uniform ~ber:5e-5 ())
    ~cframe_error:(Channel.Error_model.uniform ~ber:1e-7 ())

let build_chain engine ~nodes ~make_link =
  let params = { Lams_dlc.Params.default with Lams_dlc.Params.w_cp = 1e-3 } in
  let net = Netstack.Network.create engine ~nodes in
  for a = 0 to nodes - 2 do
    let b = a + 1 in
    let d1 = make_link engine ~seed:(100 + a) in
    let d2 = make_link engine ~seed:(200 + a) in
    let s_ab = Lams_dlc.Session.create engine ~params ~duplex:d1 in
    let s_ba = Lams_dlc.Session.create engine ~params ~duplex:d2 in
    Netstack.Network.add_link net ~a ~b
      ~ab:(Lams_dlc.Session.as_dlc s_ab)
      ~ba:(Lams_dlc.Session.as_dlc s_ba)
  done;
  Netstack.Network.compute_routes net;
  net

let test_network_single_hop () =
  let engine = Sim.Engine.create () in
  let net = build_chain engine ~nodes:2 ~make_link:perfect_lams_link in
  let got = ref [] in
  Netstack.Network.set_on_message net (fun ~dst ~src ~msg_id:_ ~body ->
      got := (dst, src, body) :: !got);
  ignore (Netstack.Network.send_message net ~src:0 ~dst:1 ~mtu:100 "hello across" : int);
  Sim.Engine.run engine ~until:1.;
  Alcotest.(check (list (triple int int string))) "delivered" [ (1, 0, "hello across") ] !got

let test_network_multi_hop_chain () =
  let engine = Sim.Engine.create () in
  let net = build_chain engine ~nodes:4 ~make_link:perfect_lams_link in
  Alcotest.(check bool) "0 reaches 3" true (Netstack.Network.reachable net ~src:0 ~dst:3);
  let got = ref [] in
  Netstack.Network.set_on_message net (fun ~dst:_ ~src:_ ~msg_id ~body ->
      got := (msg_id, body) :: !got);
  let body = String.concat "-" (List.init 50 string_of_int) in
  let id1 = Netstack.Network.send_message net ~src:0 ~dst:3 ~mtu:16 body in
  let id2 = Netstack.Network.send_message net ~src:3 ~dst:0 ~mtu:16 "reverse" in
  Sim.Engine.run engine ~until:2.;
  Alcotest.(check int) "both delivered" 2 (List.length !got);
  Alcotest.(check bool) "forward body intact" true (List.mem (id1, body) !got);
  Alcotest.(check bool) "reverse body intact" true (List.mem (id2, "reverse") !got)

let test_network_lossy_chain () =
  let engine = Sim.Engine.create () in
  let net = build_chain engine ~nodes:3 ~make_link:lossy_lams_link in
  let delivered = ref 0 in
  Netstack.Network.set_on_message net (fun ~dst:_ ~src:_ ~msg_id:_ ~body:_ ->
      incr delivered);
  let big = String.init 5000 (fun i -> Char.chr (32 + (i mod 90))) in
  for _ = 1 to 5 do
    ignore (Netstack.Network.send_message net ~src:0 ~dst:2 ~mtu:512 big : int)
  done;
  Sim.Engine.run engine ~until:30.;
  Alcotest.(check int) "all messages survive a lossy subnet" 5 !delivered;
  Alcotest.(check int) "nothing left in transit" 0
    (Netstack.Network.fragments_in_transit net)

let test_network_no_route () =
  let engine = Sim.Engine.create () in
  let net = Netstack.Network.create engine ~nodes:3 in
  Netstack.Network.compute_routes net;
  Alcotest.(check bool) "unreachable" false (Netstack.Network.reachable net ~src:0 ~dst:2);
  Alcotest.check_raises "send fails"
    (Invalid_argument "Network.send_message: no route 0->2") (fun () ->
      ignore (Netstack.Network.send_message net ~src:0 ~dst:2 ~mtu:10 "x" : int))

let test_network_local_delivery () =
  let engine = Sim.Engine.create () in
  let net = Netstack.Network.create engine ~nodes:1 in
  Netstack.Network.compute_routes net;
  let got = ref [] in
  Netstack.Network.set_on_message net (fun ~dst:_ ~src:_ ~msg_id:_ ~body ->
      got := body :: !got);
  ignore (Netstack.Network.send_message net ~src:0 ~dst:0 ~mtu:4 "loopback" : int);
  Alcotest.(check (list string)) "local" [ "loopback" ] !got

let suite =
  [
    Alcotest.test_case "fragment sizes" `Quick test_fragment_sizes;
    Alcotest.test_case "fragment empty" `Quick test_fragment_empty_message;
    Alcotest.test_case "encode/decode" `Quick test_encode_decode;
    Alcotest.test_case "decode garbage" `Quick test_decode_garbage;
    QCheck_alcotest.to_alcotest prop_fragment_roundtrip;
    Alcotest.test_case "resequencer out of order" `Quick test_resequencer_out_of_order;
    Alcotest.test_case "resequencer dedup" `Quick test_resequencer_dedup;
    Alcotest.test_case "resequencer interleaved" `Quick test_resequencer_interleaved_messages;
    QCheck_alcotest.to_alcotest prop_resequencer_any_order_any_dups;
    Alcotest.test_case "resequencer replay after completion" `Quick
      test_resequencer_replay_after_completion;
    Alcotest.test_case "resequencer gap never releases" `Quick
      test_resequencer_gap_never_releases;
    Alcotest.test_case "resequencer id reuse after wraparound" `Quick
      test_resequencer_id_reuse_after_wraparound;
    QCheck_alcotest.to_alcotest prop_resequencer_stream_order;
    Alcotest.test_case "network single hop" `Quick test_network_single_hop;
    Alcotest.test_case "network multi hop" `Quick test_network_multi_hop_chain;
    Alcotest.test_case "network lossy chain" `Quick test_network_lossy_chain;
    Alcotest.test_case "network no route" `Quick test_network_no_route;
    Alcotest.test_case "network local delivery" `Quick test_network_local_delivery;
  ]
