(* Scripted-disaster scenarios: every named fault schedule must leave the
   protocol with zero invariant violations (the oracle watches every
   harness session), and a deliberately broken configuration must trip
   the no-loss invariant — proving the oracle can actually see blood. *)

let fast = { Lams_dlc.Params.default with Lams_dlc.Params.w_cp = 1e-3 }

let recovery_counter session =
  let n = ref 0 in
  Dlc.Probe.subscribe
    (Lams_dlc.Session.probe session)
    (fun ~now:_ ev ->
      match ev with Dlc.Probe.Recovery_started -> incr n | _ -> ());
  n

(* --- LAMS-DLC scenarios ------------------------------------------------- *)

let test_kill_checkpoints_3_5 () =
  (* c_depth = 3 consecutive checkpoint losses: the silence exceeds the
     checkpoint timeout, so the sender must run enforced recovery and
     lose nothing *)
  let cp_faults =
    Channel.Fault.(of_rules [ rule (Cp_range (3, 5)) Drop ])
  in
  let t, session =
    Proto_harness.lams ~params:fast ~reverse_faults:cp_faults ()
  in
  let recoveries = recovery_counter session in
  Proto_harness.offer_all t 200;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_at_least_once t 200;
  Alcotest.(check int) "exactly the 3 checkpoints died" 3
    (Channel.Fault.hits cp_faults);
  Alcotest.(check bool) "enforced recovery ran" true (!recoveries > 0)

let test_frame_17_first_two_copies () =
  (* the logical frame is tracked by payload across LAMS renumbering:
     both early copies die, the NAK cycle runs twice, the third copy
     lands *)
  let faults =
    Channel.Fault.(
      of_rules
        [ rule ~copies:2 (I_payload (Proto_harness.payload 17)) Drop ])
  in
  let t, _session = Proto_harness.lams ~faults () in
  Proto_harness.offer_all t 40;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_exactly_once t 40;
  Alcotest.(check int) "two copies killed" 2 (Channel.Fault.hits faults)

let test_lost_checkpoint_naks () =
  (* a corrupted frame is NAKed in c_depth = 3 consecutive checkpoints;
     the first two Check-Point-NAKs die in transit and the third must
     still recover the frame *)
  let faults =
    Channel.Fault.(
      of_rules
        [ rule ~copies:1 (I_payload (Proto_harness.payload 10)) Corrupt_payload ])
  in
  let reverse_faults = Channel.Fault.(of_rules [ rule ~copies:2 Cp_nak Drop ]) in
  let t, _session = Proto_harness.lams ~faults ~reverse_faults () in
  Proto_harness.offer_all t 40;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_exactly_once t 40;
  Alcotest.(check int) "two NAK checkpoints died" 2
    (Channel.Fault.hits reverse_faults)

let test_payload_corrupt_run () =
  (* five payload-CRC failures in a row: each is identifiable by its
     header, so each is NAKed individually and retransmitted *)
  let faults =
    Channel.Fault.(
      of_rules
        (List.init 5 (fun k -> rule ~copies:1 (I_nth (5 + k)) Corrupt_payload)))
  in
  let t, _session = Proto_harness.lams ~faults () in
  Proto_harness.offer_all t 60;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_exactly_once t 60;
  Alcotest.(check int) "five payloads corrupted" 5 (Channel.Fault.hits faults)

let test_header_corrupt_frames () =
  (* unidentifiable arrivals: the receiver cannot NAK what it cannot
     name; gap detection via later frames must still recover both *)
  let faults =
    Channel.Fault.(
      of_rules
        [
          rule ~copies:1 (I_nth 3) Corrupt_header;
          rule ~copies:1 (I_nth 7) Corrupt_header;
        ])
  in
  let t, _session = Proto_harness.lams ~faults () in
  Proto_harness.offer_all t 50;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_exactly_once t 50

let test_request_nak_lost_during_recovery () =
  (* checkpoints 3-8 die, forcing enforced recovery; the first
     Request-NAK dies too, so the sender's retry logic must carry it *)
  let faults = Channel.Fault.(of_rules [ rule ~copies:1 Req_nak Drop ]) in
  let reverse_faults = Channel.Fault.(of_rules [ rule (Cp_range (3, 8)) Drop ]) in
  let t, session =
    Proto_harness.lams ~params:fast ~faults ~reverse_faults ()
  in
  let recoveries = recovery_counter session in
  Proto_harness.offer_all t 150;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_at_least_once t 150;
  Alcotest.(check bool) "request-NAK was killed" true
    (Channel.Fault.hits faults >= 1);
  Alcotest.(check bool) "recovery still completed" true (!recoveries > 0)

let test_enforced_nak_lost_during_recovery () =
  (* the answer direction fails instead: the first Enforced-NAK dies and
     the failure-timer retry must fetch a second one *)
  let reverse_faults =
    Channel.Fault.(
      of_rules [ rule (Cp_range (3, 8)) Drop; rule ~copies:1 Cp_enforced Drop ])
  in
  let t, session = Proto_harness.lams ~params:fast ~reverse_faults () in
  let recoveries = recovery_counter session in
  Proto_harness.offer_all t 150;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_at_least_once t 150;
  Alcotest.(check bool) "recovery completed despite lost answer" true
    (!recoveries > 0);
  Alcotest.(check bool) "sender not failed" false
    (Lams_dlc.Sender.failed (Lams_dlc.Session.sender session))

let test_burst_window_both_directions () =
  (* a 2 ms bidirectional outage window: I-frames and checkpoints both
     vanish; cumulative NAKs plus enforced recovery must cover it *)
  let faults =
    Channel.Fault.(of_rules [ rule ~window:(0.002, 0.004) Any_iframe Drop ])
  in
  let reverse_faults =
    Channel.Fault.(of_rules [ rule ~window:(0.002, 0.004) Any_control Drop ])
  in
  let t, _session =
    Proto_harness.lams ~params:fast ~faults ~reverse_faults ()
  in
  Proto_harness.offer_all t 300;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_at_least_once t 300;
  Alcotest.(check bool) "the burst actually hit traffic" true
    (Channel.Fault.hits faults > 0)

let test_seeded_adversary () =
  (* reproducible chaos: i.i.d. drops on both frame classes from a fixed
     seed; whatever falls, nothing may be lost or mis-released *)
  let faults =
    Channel.Fault.(compile (adversary ~seed:42 ~p_iframe:0.15 ()))
  in
  let reverse_faults =
    Channel.Fault.(compile (adversary ~seed:43 ~p_control:0.05 ()))
  in
  let t, _session =
    Proto_harness.lams ~params:fast ~faults ~reverse_faults ()
  in
  Proto_harness.offer_all t 200;
  Proto_harness.run_to_completion t ~horizon:120.;
  Proto_harness.delivered_at_least_once t 200;
  Alcotest.(check bool) "adversary drew blood" true
    (Channel.Fault.hits faults > 0)

(* --- HDLC / NBDT scenarios --------------------------------------------- *)

let test_hdlc_sr_faults () =
  (* drop a frame copy and the SREJ that asks for it again: checkpoint
     (poll) recovery must re-request it; order and uniqueness hold *)
  let faults = Channel.Fault.(of_rules [ rule ~copies:1 (I_seq 5) Drop ]) in
  let reverse_faults =
    Channel.Fault.(of_rules [ rule ~copies:1 (Control_nth 5) Drop ])
  in
  let t, _session = Proto_harness.hdlc ~faults ~reverse_faults () in
  Proto_harness.offer_all t 60;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_exactly_once t 60;
  Proto_harness.in_order t

let test_hdlc_gbn_faults () =
  let params =
    { Hdlc.Params.default with Hdlc.Params.mode = Hdlc.Params.Go_back_n }
  in
  let faults =
    Channel.Fault.(
      of_rules
        [ rule ~copies:1 (I_nth 10) Drop; rule ~copies:1 (I_nth 25) Corrupt_payload ])
  in
  let t, _session = Proto_harness.hdlc ~params ~faults () in
  Proto_harness.offer_all t 60;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_exactly_once t 60;
  Proto_harness.in_order t

let test_hdlc_seqnum_wraparound () =
  (* seq_bits = 3: the cyclic space holds 8 numbers and the SR window 4,
     so 120 frames wrap the numbering 15 times; drops force window-edge
     retransmissions. The oracle checks range, window occupancy, order
     and uniqueness across every wrap *)
  let params =
    { Hdlc.Params.default with Hdlc.Params.seq_bits = 3; window = 4 }
  in
  let faults =
    Channel.Fault.(
      of_rules
        [ rule ~copies:1 (I_nth 9) Drop; rule ~copies:1 (I_nth 40) Corrupt_payload ])
  in
  let t, _session = Proto_harness.hdlc ~params ~faults () in
  Proto_harness.offer_all t 120;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_exactly_once t 120;
  Proto_harness.in_order t

let test_nbdt_faults () =
  (* NBDT keeps absolute numbers; drop a frame and the two status reports
     that would have NAKed it — the cumulative next report recovers it *)
  let faults = Channel.Fault.(of_rules [ rule ~copies:1 (I_nth 4) Drop ]) in
  let reverse_faults = Channel.Fault.(of_rules [ rule ~copies:2 Cp_nak Drop ]) in
  let t, _session = Proto_harness.nbdt ~faults ~reverse_faults () in
  Proto_harness.offer_all t 60;
  Proto_harness.run_to_completion t;
  Proto_harness.delivered_exactly_once t 60

(* --- the oracle must be able to see blood ------------------------------- *)

let test_broken_c_depth0_trips_no_loss () =
  (* c_depth = 0 is rejected by Params.validate, so build the halves
     directly, misconfiguring only the receiver: its NAK history window
     is empty, it never reports the dropped frame, the sender sees
     next_expected pass the gap and releases an undelivered payload —
     the oracle must call it *)
  let broken = { Lams_dlc.Params.default with Lams_dlc.Params.c_depth = 0 } in
  let engine = Sim.Engine.create () in
  let duplex = Proto_harness.make_duplex engine in
  let probe = Dlc.Probe.create () in
  let metrics = Dlc.Metrics.create () in
  let sender =
    Lams_dlc.Sender.create engine ~params:Lams_dlc.Params.default
      ~forward:duplex.Channel.Duplex.forward ~metrics ~probe
  in
  let receiver =
    Lams_dlc.Receiver.create engine ~params:broken
      ~reverse:duplex.Channel.Duplex.reverse ~metrics ~probe
  in
  Channel.Link.set_receiver duplex.Channel.Duplex.forward (fun rx ->
      Lams_dlc.Receiver.on_rx receiver rx);
  Channel.Link.set_receiver duplex.Channel.Duplex.reverse (fun rx ->
      Lams_dlc.Sender.on_rx sender rx);
  let oracle =
    Oracle.create ~name:"broken-config"
      (Oracle.Lams { c_depth = 0; holding_bound = 1.0 })
  in
  Oracle.attach oracle ~probe ~duplex;
  let faults =
    Channel.Fault.(
      of_rules [ rule ~copies:1 (I_payload (Proto_harness.payload 5)) Drop ])
  in
  Channel.Fault.install faults duplex.Channel.Duplex.forward;
  for i = 0 to 19 do
    if not (Lams_dlc.Sender.offer sender (Proto_harness.payload i)) then
      Alcotest.failf "offer %d refused" i
  done;
  Sim.Engine.run engine ~until:1.;
  Lams_dlc.Sender.stop sender;
  Lams_dlc.Receiver.stop receiver;
  Sim.Engine.run engine;
  Oracle.finalize oracle;
  Alcotest.(check bool) "oracle saw the loss" false (Oracle.ok oracle);
  let tripped =
    List.exists
      (fun v -> v.Oracle.invariant = "released-undelivered")
      (Oracle.violations oracle)
  in
  if not tripped then
    Alcotest.failf "expected released-undelivered, got:\n%s"
      (Oracle.report oracle)

(* --- random fault-script explorer --------------------------------------- *)

(* Safety must hold under EVERY fault schedule: random scripts on both
   directions, the protocol may stall or declare failure, but the oracle
   must stay clean. QCheck shrinks a failing schedule to a minimal one. *)

let selector_to_string (s : Channel.Fault.selector) =
  match s with
  | Channel.Fault.I_seq n -> Printf.sprintf "I_seq %d" n
  | I_payload p -> Printf.sprintf "I_payload %S" p
  | I_nth n -> Printf.sprintf "I_nth %d" n
  | Cp_seq n -> Printf.sprintf "Cp_seq %d" n
  | Cp_range (a, b) -> Printf.sprintf "Cp_range (%d,%d)" a b
  | Cp_nak -> "Cp_nak"
  | Cp_enforced -> "Cp_enforced"
  | Req_nak -> "Req_nak"
  | Control_nth n -> Printf.sprintf "Control_nth %d" n
  | Any_iframe -> "Any_iframe"
  | Any_control -> "Any_control"
  | Any_frame -> "Any_frame"

let action_to_string = function
  | Channel.Fault.Drop -> "Drop"
  | Channel.Fault.Corrupt_payload -> "Corrupt_payload"
  | Channel.Fault.Corrupt_header -> "Corrupt_header"
  | Channel.Fault.Forge_ack -> "Forge_ack"
  | Channel.Fault.Rewrite_cp_seq { delta } ->
      Printf.sprintf "Rewrite_cp_seq %+d" delta
  | Channel.Fault.Inject_stale_cp { back } ->
      Printf.sprintf "Inject_stale_cp back=%d" back

let script_to_string script =
  String.concat "; "
    (List.map
       (fun (sel, act, copies) ->
         Printf.sprintf "%s -> %s x%d" (selector_to_string sel)
           (action_to_string act) copies)
       script)

let gen_action =
  QCheck2.Gen.oneofl
    [ Channel.Fault.Drop; Channel.Fault.Corrupt_payload; Channel.Fault.Corrupt_header ]

let gen_forward_selector =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> Channel.Fault.I_nth n) (int_range 0 50);
        map
          (fun p -> Channel.Fault.I_payload (Proto_harness.payload p))
          (int_range 0 50);
        return Channel.Fault.Req_nak;
      ])

let gen_reverse_selector =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> Channel.Fault.Cp_seq n) (int_range 0 40);
        map2
          (fun lo len -> Channel.Fault.Cp_range (lo, lo + len))
          (int_range 0 30) (int_range 0 2);
        return Channel.Fault.Cp_nak;
        return Channel.Fault.Cp_enforced;
        map (fun n -> Channel.Fault.Control_nth n) (int_range 0 40);
      ])

let gen_script sel =
  QCheck2.Gen.(
    list_size (int_range 0 5)
      (map2 (fun (s, a) c -> (s, a, c)) (pair sel gen_action) (int_range 1 3)))

let compile_script script =
  Channel.Fault.of_rules
    (List.map
       (fun (sel, act, copies) -> Channel.Fault.rule ~copies sel act)
       script)

let prop_safety_under_any_fault_script =
  QCheck2.Test.make ~name:"safety under random fault scripts" ~count:40
    ~print:(fun (fwd, rev, seed) ->
      Printf.sprintf "seed %d\n  forward: [%s]\n  reverse: [%s]" seed
        (script_to_string fwd) (script_to_string rev))
    QCheck2.Gen.(
      triple (gen_script gen_forward_selector) (gen_script gen_reverse_selector)
        (int_range 0 1000))
    (fun (fwd, rev, seed) ->
      let t, _session =
        Proto_harness.lams ~seed ~params:fast
          ~faults:(compile_script fwd)
          ~reverse_faults:(compile_script rev) ()
      in
      Proto_harness.offer_all t 60;
      Proto_harness.run_to_completion t ~horizon:30. ~check_oracle:false;
      Oracle.finalize t.Proto_harness.oracle;
      Oracle.ok t.Proto_harness.oracle)

let suite =
  [
    Alcotest.test_case "kill checkpoints 3-5 -> enforced recovery" `Quick
      test_kill_checkpoints_3_5;
    Alcotest.test_case "frame 17 loses its first two copies" `Quick
      test_frame_17_first_two_copies;
    Alcotest.test_case "lost Check-Point-NAKs" `Quick test_lost_checkpoint_naks;
    Alcotest.test_case "payload-corrupt run of five" `Quick
      test_payload_corrupt_run;
    Alcotest.test_case "header-corrupt (unidentifiable) frames" `Quick
      test_header_corrupt_frames;
    Alcotest.test_case "Request-NAK lost during recovery" `Quick
      test_request_nak_lost_during_recovery;
    Alcotest.test_case "Enforced-NAK lost during recovery" `Quick
      test_enforced_nak_lost_during_recovery;
    Alcotest.test_case "bidirectional burst window" `Quick
      test_burst_window_both_directions;
    Alcotest.test_case "seeded adversary" `Quick test_seeded_adversary;
    Alcotest.test_case "HDLC-SR: frame + SREJ loss" `Quick test_hdlc_sr_faults;
    Alcotest.test_case "GBN-HDLC: drop + corrupt" `Quick test_hdlc_gbn_faults;
    Alcotest.test_case "HDLC seqnum wraparound (3-bit space)" `Quick
      test_hdlc_seqnum_wraparound;
    Alcotest.test_case "NBDT: frame + report loss" `Quick test_nbdt_faults;
    Alcotest.test_case "broken c_depth=0 trips no-loss" `Quick
      test_broken_c_depth0_trips_no_loss;
    QCheck_alcotest.to_alcotest prop_safety_under_any_fault_script;
  ]
