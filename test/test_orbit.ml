(* Orbit substrate tests: vectors, circular orbits, geometry,
   constellations, contact windows. *)

let feq name ?(eps = 1e-6) a b =
  if Float.abs (a -. b) > eps *. (1. +. Float.abs b) then
    Alcotest.failf "%s: %g != %g" name a b

let test_vec3_ops () =
  let a = Orbit.Vec3.make 1. 2. 3. and b = Orbit.Vec3.make 4. (-5.) 6. in
  feq "dot" (Orbit.Vec3.dot a b) 12.;
  let c = Orbit.Vec3.cross a b in
  feq "cross x" c.Orbit.Vec3.x 27.;
  feq "cross y" c.Orbit.Vec3.y 6.;
  feq "cross z" c.Orbit.Vec3.z (-13.);
  feq "norm" (Orbit.Vec3.norm (Orbit.Vec3.make 3. 4. 0.)) 5.;
  feq "distance" (Orbit.Vec3.distance a a) 0.

let test_vec3_normalize () =
  let v = Orbit.Vec3.normalize (Orbit.Vec3.make 0. 0. 9.) in
  feq "unit" (Orbit.Vec3.norm v) 1.;
  Alcotest.check_raises "zero vector" (Invalid_argument "Vec3.normalize: zero vector")
    (fun () -> ignore (Orbit.Vec3.normalize Orbit.Vec3.zero))

let leo =
  Orbit.Circular_orbit.create ~altitude_m:1_000_000. ~inclination_rad:1.0
    ~raan_rad:0.5 ~phase_rad:0. ()

let test_orbit_radius_constant () =
  let a = Orbit.Circular_orbit.semi_major_axis leo in
  List.iter
    (fun t ->
      feq "radius" (Orbit.Vec3.norm (Orbit.Circular_orbit.position leo ~at:t)) a)
    [ 0.; 100.; 1234.; 99999. ]

let test_orbit_period () =
  (* ~1000 km LEO: period about 105 minutes *)
  let p = Orbit.Circular_orbit.period leo in
  if p < 6000. || p > 6600. then Alcotest.failf "period %g out of LEO range" p;
  (* position repeats after one period *)
  let p0 = Orbit.Circular_orbit.position leo ~at:0. in
  let p1 = Orbit.Circular_orbit.position leo ~at:p in
  feq "periodic" (Orbit.Vec3.distance p0 p1 /. Orbit.Vec3.norm p0) 0. ~eps:1e-6

let test_orbit_velocity () =
  (* circular speed = sqrt(mu/a) ~ 7.35 km/s at 1000 km *)
  let v = Orbit.Vec3.norm (Orbit.Circular_orbit.velocity leo ~at:42.) in
  let expected =
    sqrt (Orbit.Circular_orbit.mu_earth /. Orbit.Circular_orbit.semi_major_axis leo)
  in
  feq "circular speed" v expected ~eps:1e-9;
  (* velocity is tangent: orthogonal to position *)
  let p = Orbit.Circular_orbit.position leo ~at:42. in
  let vv = Orbit.Circular_orbit.velocity leo ~at:42. in
  feq "tangent" (Orbit.Vec3.dot p vv /. (Orbit.Vec3.norm p *. Orbit.Vec3.norm vv)) 0.
    ~eps:1e-9

let test_velocity_matches_numeric_derivative () =
  let dt = 1e-3 in
  let p0 = Orbit.Circular_orbit.position leo ~at:10. in
  let p1 = Orbit.Circular_orbit.position leo ~at:(10. +. dt) in
  let v = Orbit.Circular_orbit.velocity leo ~at:10. in
  let numeric = Orbit.Vec3.scale (1. /. dt) (Orbit.Vec3.sub p1 p0) in
  feq "numeric derivative" (Orbit.Vec3.distance v numeric /. Orbit.Vec3.norm v) 0.
    ~eps:1e-4

let test_line_of_sight () =
  let o1 =
    Orbit.Circular_orbit.create ~altitude_m:1_000_000. ~inclination_rad:0.
      ~raan_rad:0. ~phase_rad:0. ()
  in
  (* same plane, 0.5 rad apart: chord clears the Earth comfortably *)
  let o2 = { o1 with Orbit.Circular_orbit.phase_rad = 0.5 } in
  Alcotest.(check bool) "0.5 rad apart visible" true
    (Orbit.Geometry.line_of_sight o1 o2 ~at:0.);
  (* quarter orbit apart at 1000 km the chord dips below the surface *)
  let o2q = { o1 with Orbit.Circular_orbit.phase_rad = Float.pi /. 2. } in
  Alcotest.(check bool) "quarter apart occluded" false
    (Orbit.Geometry.line_of_sight o1 o2q ~at:0.);
  (* antipodal: Earth in the way *)
  let o3 = { o1 with Orbit.Circular_orbit.phase_rad = Float.pi } in
  Alcotest.(check bool) "antipodal occluded" false
    (Orbit.Geometry.line_of_sight o1 o3 ~at:0.)

let test_min_segment_altitude () =
  let r = Orbit.Circular_orbit.earth_radius_m in
  let a = Orbit.Vec3.make (r +. 1000.) 0. 0. in
  let b = Orbit.Vec3.make (-.(r +. 1000.)) 0. 0. in
  (* segment passes through the geocentre *)
  feq "through centre" (Orbit.Geometry.min_segment_altitude a b) (-.r) ~eps:1e-9;
  (* endpoints only: altitude = 1000 m *)
  feq "endpoint altitude" (Orbit.Geometry.min_segment_altitude a a) 1000. ~eps:1e-9

let test_walker_structure () =
  let c =
    Orbit.Constellation.walker ~total:12 ~planes:3 ~phasing:1
      ~altitude_m:1_000_000. ~inclination_rad:1.2
  in
  Alcotest.(check int) "size" 12 (Orbit.Constellation.size c);
  let sat5 = Orbit.Constellation.sat c 5 in
  Alcotest.(check int) "plane of 5" 1 sat5.Orbit.Constellation.plane;
  Alcotest.(check int) "index of 5" 1 sat5.Orbit.Constellation.index_in_plane;
  (* neighbours: two intra-plane, two inter-plane *)
  let n = Orbit.Constellation.neighbors c 5 in
  Alcotest.(check int) "4 neighbours" 4 (List.length n);
  Alcotest.(check bool) "intra fwd" true (List.mem 6 n);
  Alcotest.(check bool) "intra bwd" true (List.mem 4 n);
  Alcotest.(check bool) "inter left" true (List.mem 1 n);
  Alcotest.(check bool) "inter right" true (List.mem 9 n)

let test_walker_bad_args () =
  Alcotest.check_raises "indivisible"
    (Invalid_argument "Constellation.walker: total must divide evenly into planes")
    (fun () ->
      ignore
        (Orbit.Constellation.walker ~total:10 ~planes:3 ~phasing:0
           ~altitude_m:1e6 ~inclination_rad:1.))

let test_walker_neighbors_visible () =
  (* intra-plane neighbours of an 8-per-plane ring are close enough to see *)
  let c =
    Orbit.Constellation.walker ~total:24 ~planes:3 ~phasing:0
      ~altitude_m:1_200_000. ~inclination_rad:1.0
  in
  let s0 = Orbit.Constellation.sat c 0 and s1 = Orbit.Constellation.sat c 1 in
  Alcotest.(check bool) "ring neighbours visible" true
    (Orbit.Geometry.line_of_sight s0.Orbit.Constellation.orbit
       s1.Orbit.Constellation.orbit ~at:0.)

let test_visible_pairs_symmetric_content () =
  let c =
    Orbit.Constellation.walker ~total:6 ~planes:2 ~phasing:0 ~altitude_m:1e6
      ~inclination_rad:0.9
  in
  let pairs = Orbit.Constellation.visible_pairs c ~at:100. in
  List.iter
    (fun (i, j) ->
      if i >= j then Alcotest.failf "pair not ordered: (%d, %d)" i j;
      Alcotest.(check bool) "pair is actually visible" true
        (Orbit.Geometry.line_of_sight
           (Orbit.Constellation.sat c i).Orbit.Constellation.orbit
           (Orbit.Constellation.sat c j).Orbit.Constellation.orbit ~at:100.))
    pairs

let test_contact_windows_coplanar () =
  (* co-planar neighbours never lose sight: one window spanning the
     whole horizon *)
  let o1 =
    Orbit.Circular_orbit.create ~altitude_m:1e6 ~inclination_rad:0.7 ~raan_rad:0.
      ~phase_rad:0. ()
  in
  let o2 = { o1 with Orbit.Circular_orbit.phase_rad = 0.5 } in
  match Orbit.Contact.windows o1 o2 ~from_t:0. ~until_t:5000. with
  | [ w ] ->
      Alcotest.(check (float 1e-6)) "starts at 0" 0. w.Orbit.Contact.t_start;
      Alcotest.(check (float 1e-6)) "ends at horizon" 5000. w.Orbit.Contact.t_end
  | ws -> Alcotest.failf "expected one window, got %d" (List.length ws)

let test_contact_windows_crossing () =
  (* counter-phased satellites in the same plane alternate between
     visible and occluded: multiple windows *)
  let o1 =
    Orbit.Circular_orbit.create ~altitude_m:1e6 ~inclination_rad:0.7 ~raan_rad:0.
      ~phase_rad:0. ()
  in
  let o2 =
    Orbit.Circular_orbit.create ~altitude_m:2e6 ~inclination_rad:0.7
      ~raan_rad:Float.pi ~phase_rad:1.3 ()
  in
  let horizon = 4. *. Orbit.Circular_orbit.period o1 in
  let ws = Orbit.Contact.windows o1 o2 ~from_t:0. ~until_t:horizon in
  if List.length ws < 2 then
    Alcotest.failf "expected multiple windows, got %d" (List.length ws);
  (* windows are disjoint and ordered *)
  let rec check_disjoint = function
    | a :: (b :: _ as rest) ->
        if a.Orbit.Contact.t_end > b.Orbit.Contact.t_start then
          Alcotest.fail "overlapping windows";
        check_disjoint rest
    | _ -> ()
  in
  check_disjoint ws;
  List.iter
    (fun w ->
      if Orbit.Contact.duration w <= 0. then Alcotest.fail "empty window")
    ws

let test_j2_precession () =
  let base ~j2 =
    Orbit.Circular_orbit.create ~j2 ~altitude_m:800_000.
      ~inclination_rad:(98.6 *. Float.pi /. 180.)
      ~raan_rad:0. ~phase_rad:0. ()
  in
  let off = base ~j2:false and on = base ~j2:true in
  feq "no drift without j2" (Orbit.Circular_orbit.raan_rate off) 0. ~eps:1e-18;
  (* sun-synchronous test case: ~800 km at 98.6 deg regresses EASTWARD at
     about +1.99e-7 rad/s (2 pi per year) *)
  let rate = Orbit.Circular_orbit.raan_rate on in
  if rate < 1.5e-7 || rate > 2.5e-7 then
    Alcotest.failf "sun-sync raan rate %g not ~2e-7" rate;
  (* prograde LEO regresses westward *)
  let prograde =
    Orbit.Circular_orbit.create ~j2:true ~altitude_m:1e6 ~inclination_rad:0.9
      ~raan_rad:0. ~phase_rad:0. ()
  in
  Alcotest.(check bool) "prograde drifts westward" true
    (Orbit.Circular_orbit.raan_rate prograde < 0.);
  (* the drift actually moves the plane: position after a day differs
     from the j2-off propagation by many kilometres *)
  let day = 86_400. in
  let d =
    Orbit.Vec3.distance
      (Orbit.Circular_orbit.position on ~at:day)
      (Orbit.Circular_orbit.position off ~at:day)
  in
  Alcotest.(check bool) "plane moved" true (d > 10_000.);
  (* radius is still constant under J2 *)
  feq "radius constant"
    (Orbit.Vec3.norm (Orbit.Circular_orbit.position on ~at:day))
    (Orbit.Circular_orbit.semi_major_axis on)

let test_contact_usable () =
  let w = { Orbit.Contact.t_start = 10.; t_end = 20. } in
  (match Orbit.Contact.usable w ~retarget_overhead:4. with
  | Some w' ->
      Alcotest.(check (float 1e-9)) "shrunk start" 14. w'.Orbit.Contact.t_start
  | None -> Alcotest.fail "window should remain");
  Alcotest.(check bool) "consumed window" true
    (Orbit.Contact.usable w ~retarget_overhead:10. = None)

let test_contact_windows_mid_window_span () =
  (* from_t / until_t landing inside a visibility interval clamp the
     returned window to the queried span exactly — the bisection must
     not run edges outside [from_t, until_t] when visibility holds over
     the whole span *)
  let o1 =
    Orbit.Circular_orbit.create ~altitude_m:1e6 ~inclination_rad:0.7 ~raan_rad:0.
      ~phase_rad:0. ()
  in
  let o2 = { o1 with Orbit.Circular_orbit.phase_rad = 0.5 } in
  match Orbit.Contact.windows o1 o2 ~from_t:123.456 ~until_t:789.012 with
  | [ w ] ->
      Alcotest.(check (float 1e-9)) "starts at from_t" 123.456
        w.Orbit.Contact.t_start;
      Alcotest.(check (float 1e-9)) "ends at until_t" 789.012
        w.Orbit.Contact.t_end
  | ws -> Alcotest.failf "expected one clamped window, got %d" (List.length ws)

let test_contact_windows_truncated_by_span () =
  (* querying the middle slice of a real crossing-pair window returns
     that window truncated at both query bounds *)
  let o1 =
    Orbit.Circular_orbit.create ~altitude_m:1e6 ~inclination_rad:0.7 ~raan_rad:0.
      ~phase_rad:0. ()
  in
  let o2 =
    Orbit.Circular_orbit.create ~altitude_m:2e6 ~inclination_rad:0.7
      ~raan_rad:Float.pi ~phase_rad:1.3 ()
  in
  let horizon = 4. *. Orbit.Circular_orbit.period o1 in
  let full = Orbit.Contact.windows o1 o2 ~from_t:0. ~until_t:horizon in
  let w =
    match List.find_opt (fun w -> Orbit.Contact.duration w >= 120.) full with
    | Some w -> w
    | None -> Alcotest.fail "no long window found"
  in
  let from_t = w.Orbit.Contact.t_start +. (Orbit.Contact.duration w /. 4.) in
  let until_t = w.Orbit.Contact.t_end -. (Orbit.Contact.duration w /. 4.) in
  (match Orbit.Contact.windows o1 o2 ~from_t ~until_t with
  | [ w' ] ->
      Alcotest.(check (float 1e-3)) "truncated start" from_t
        w'.Orbit.Contact.t_start;
      Alcotest.(check (float 1e-3)) "truncated end" until_t
        w'.Orbit.Contact.t_end
  | ws -> Alcotest.failf "expected the one mid-window slice, got %d"
            (List.length ws));
  (* the slice, shrunk by a retargeting overhead bigger than itself, is
     consumed entirely *)
  Alcotest.(check bool) "slice consumed by retargeting" true
    (Orbit.Contact.usable { Orbit.Contact.t_start = from_t; t_end = until_t }
       ~retarget_overhead:(until_t -. from_t +. 1.)
    = None)

let test_contact_distances () =
  let o1 =
    Orbit.Circular_orbit.create ~altitude_m:1e6 ~inclination_rad:0.7 ~raan_rad:0.
      ~phase_rad:0. ()
  in
  let o2 = { o1 with Orbit.Circular_orbit.phase_rad = 0.5 } in
  let w = { Orbit.Contact.t_start = 0.; t_end = 1000. } in
  let mean = Orbit.Contact.mean_distance o1 o2 w ~samples:50 in
  let dmax = Orbit.Contact.max_distance o1 o2 w ~samples:50 in
  (* co-planar constant separation: mean == max == chord distance *)
  feq "mean = max for rigid pair" mean dmax ~eps:1e-9;
  let chord =
    2. *. Orbit.Circular_orbit.semi_major_axis o1 *. sin 0.25
  in
  feq "chord distance" mean chord ~eps:1e-6

let suite =
  [
    Alcotest.test_case "vec3 ops" `Quick test_vec3_ops;
    Alcotest.test_case "vec3 normalize" `Quick test_vec3_normalize;
    Alcotest.test_case "orbit radius constant" `Quick test_orbit_radius_constant;
    Alcotest.test_case "orbit period" `Quick test_orbit_period;
    Alcotest.test_case "orbit velocity" `Quick test_orbit_velocity;
    Alcotest.test_case "velocity = numeric derivative" `Quick
      test_velocity_matches_numeric_derivative;
    Alcotest.test_case "line of sight" `Quick test_line_of_sight;
    Alcotest.test_case "min segment altitude" `Quick test_min_segment_altitude;
    Alcotest.test_case "walker structure" `Quick test_walker_structure;
    Alcotest.test_case "walker bad args" `Quick test_walker_bad_args;
    Alcotest.test_case "walker neighbours visible" `Quick test_walker_neighbors_visible;
    Alcotest.test_case "visible pairs" `Quick test_visible_pairs_symmetric_content;
    Alcotest.test_case "contact windows coplanar" `Quick test_contact_windows_coplanar;
    Alcotest.test_case "contact windows crossing" `Quick test_contact_windows_crossing;
    Alcotest.test_case "J2 precession" `Quick test_j2_precession;
    Alcotest.test_case "contact usable" `Quick test_contact_usable;
    Alcotest.test_case "contact mid-window span" `Quick
      test_contact_windows_mid_window_span;
    Alcotest.test_case "contact truncated by span" `Quick
      test_contact_windows_truncated_by_span;
    Alcotest.test_case "contact distances" `Quick test_contact_distances;
  ]
