(* Unit and property tests for Sim.Rng (SplitMix64). *)

let test_determinism () =
  let a = Sim.Rng.create ~seed:123 and b = Sim.Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" false
    (Sim.Rng.bits64 a = Sim.Rng.bits64 b)

let test_copy_preserves_state () =
  let a = Sim.Rng.create ~seed:7 in
  ignore (Sim.Rng.bits64 a : int64);
  let b = Sim.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Sim.Rng.bits64 a)
    (Sim.Rng.bits64 b)

let test_split_independence () =
  let a = Sim.Rng.create ~seed:9 in
  let child = Sim.Rng.split a in
  (* child and parent produce different streams *)
  Alcotest.(check bool) "split differs from parent" false
    (Sim.Rng.bits64 child = Sim.Rng.bits64 a)

let test_unit_float_range () =
  let r = Sim.Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let x = Sim.Rng.unit_float r in
    if not (x >= 0. && x < 1.) then
      Alcotest.failf "unit_float out of range: %g" x
  done

let test_int_bounds () =
  let r = Sim.Rng.create ~seed:6 in
  for _ = 1 to 10_000 do
    let x = Sim.Rng.int r 17 in
    if x < 0 || x >= 17 then Alcotest.failf "int out of range: %d" x
  done

let test_bernoulli_extremes () =
  let r = Sim.Rng.create ~seed:8 in
  Alcotest.(check bool) "p=0 never true" false (Sim.Rng.bernoulli r ~p:0.);
  Alcotest.(check bool) "p=1 always true" true (Sim.Rng.bernoulli r ~p:1.)

let test_bernoulli_mean () =
  let r = Sim.Rng.create ~seed:10 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Sim.Rng.bernoulli r ~p:0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  if Float.abs (freq -. 0.3) > 0.01 then
    Alcotest.failf "bernoulli(0.3) frequency %g too far off" freq

let test_exponential_mean () =
  let r = Sim.Rng.create ~seed:11 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Sim.Rng.exponential r ~mean:2.5
  done;
  let mean = !acc /. float_of_int n in
  if Float.abs (mean -. 2.5) > 0.05 then
    Alcotest.failf "exponential mean %g != 2.5" mean

let test_geometric_support_and_mean () =
  let r = Sim.Rng.create ~seed:12 in
  let n = 50_000 in
  let acc = ref 0 in
  for _ = 1 to n do
    let k = Sim.Rng.geometric r ~p:0.25 in
    if k < 1 then Alcotest.failf "geometric < 1: %d" k;
    acc := !acc + k
  done;
  let mean = float_of_int !acc /. float_of_int n in
  if Float.abs (mean -. 4.) > 0.1 then
    Alcotest.failf "geometric(0.25) mean %g != 4" mean

let test_geometric_p1 () =
  let r = Sim.Rng.create ~seed:13 in
  for _ = 1 to 100 do
    Alcotest.(check int) "p=1 gives 1" 1 (Sim.Rng.geometric r ~p:1.)
  done

let test_binomial_small_exact_range () =
  let r = Sim.Rng.create ~seed:14 in
  for _ = 1 to 1000 do
    let k = Sim.Rng.binomial r ~n:20 ~p:0.5 in
    if k < 0 || k > 20 then Alcotest.failf "binomial out of range: %d" k
  done

let test_binomial_large_mean () =
  let r = Sim.Rng.create ~seed:15 in
  let trials = 2000 in
  let acc = ref 0 in
  for _ = 1 to trials do
    acc := !acc + Sim.Rng.binomial r ~n:10_000 ~p:0.01
  done;
  let mean = float_of_int !acc /. float_of_int trials in
  (* expected 100, sd per trial ~10, sd of the mean ~0.22 *)
  if Float.abs (mean -. 100.) > 2. then
    Alcotest.failf "binomial(10000, 0.01) mean %g != 100" mean

(* Low-np regime: a frame of n bits at bit-error rate p suffers at least
   one error with probability 1 - (1-p)^n. The old normal approximation
   rounded every draw to 0 here (mean << 0.5), silently zeroing the
   simulated frame-error rate at BER <= 1e-6. These tests pin the
   empirical FER against the closed form. *)
let check_low_ber_fer ~seed ~bits ~ber ~samples ~tol =
  let r = Sim.Rng.create ~seed in
  let errored = ref 0 in
  for _ = 1 to samples do
    if Sim.Rng.binomial r ~n:bits ~p:ber > 0 then incr errored
  done;
  let fer = float_of_int !errored /. float_of_int samples in
  let expected = 1. -. exp (float_of_int bits *. log1p (-.ber)) in
  if Float.abs (fer -. expected) > tol *. expected then
    Alcotest.failf "FER at BER %g: got %g, expected %g (tol %g%%)" ber fer
      expected (100. *. tol)

let test_binomial_low_ber_1e6 () =
  (* 12,000-bit frame at BER 1e-6: expected FER ~1.19e-2. Over 1e6
     samples the relative sampling noise is ~0.9%, so 10% is generous. *)
  check_low_ber_fer ~seed:18 ~bits:12_000 ~ber:1e-6 ~samples:1_000_000
    ~tol:0.1

let test_binomial_low_ber_1e7 () =
  (* The ISSUE acceptance case: BER 1e-7, expected FER ~1.2e-3, which
     the normal approximation simulated as exactly 0. Relative sampling
     noise over 1e6 draws is ~2.9%. *)
  check_low_ber_fer ~seed:19 ~bits:12_000 ~ber:1e-7 ~samples:1_000_000
    ~tol:0.1

let test_binomial_inversion_mean () =
  (* Mean of the inversion branch (n > 64, n*p small) against n*p. *)
  let r = Sim.Rng.create ~seed:20 in
  let trials = 200_000 in
  let acc = ref 0 in
  for _ = 1 to trials do
    acc := !acc + Sim.Rng.binomial r ~n:10_000 ~p:1e-4
  done;
  let mean = float_of_int !acc /. float_of_int trials in
  (* expected 1.0, sd per trial ~1, sd of the mean ~2.2e-3 *)
  if Float.abs (mean -. 1.0) > 0.02 then
    Alcotest.failf "binomial(10000, 1e-4) mean %g != 1" mean

let test_binomial_high_p_symmetry () =
  (* p > 0.5 with small n*(1-p) exercises the mirrored inversion path:
     sample failures and return n - k. *)
  let r = Sim.Rng.create ~seed:21 in
  let trials = 100_000 in
  let acc = ref 0 in
  for _ = 1 to trials do
    let k = Sim.Rng.binomial r ~n:1000 ~p:0.999 in
    if k < 0 || k > 1000 then Alcotest.failf "out of range: %d" k;
    acc := !acc + k
  done;
  let mean = float_of_int !acc /. float_of_int trials in
  (* expected 999, sd per trial ~1, sd of the mean ~3e-3 *)
  if Float.abs (mean -. 999.) > 0.05 then
    Alcotest.failf "binomial(1000, 0.999) mean %g != 999" mean

let test_binomial_edges () =
  let r = Sim.Rng.create ~seed:16 in
  Alcotest.(check int) "n=0" 0 (Sim.Rng.binomial r ~n:0 ~p:0.5);
  Alcotest.(check int) "p=0" 0 (Sim.Rng.binomial r ~n:100 ~p:0.);
  Alcotest.(check int) "p=1" 100 (Sim.Rng.binomial r ~n:100 ~p:1.)

let test_shuffle_is_permutation () =
  let r = Sim.Rng.create ~seed:17 in
  let a = Array.init 50 Fun.id in
  Sim.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

(* --- hash-based path derivation (the matrix runner's seeds) --------- *)

let test_derive_determinism () =
  let a = Sim.Rng.derive ~root:42 [ "e6"; "ber=1e-5"; "0" ]
  and b = Sim.Rng.derive ~root:42 [ "e6"; "ber=1e-5"; "0" ] in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same path, same stream" (Sim.Rng.bits64 a)
      (Sim.Rng.bits64 b)
  done

let test_derive_stability () =
  (* Pinned value: derivation must never change across runs, platforms
     or releases, or archived matrix reports stop being reproducible. *)
  Alcotest.(check int)
    "derive_seed(42, e6/ber=1e-5/0) pinned" 2359814061942860303
    (Sim.Rng.derive_seed ~root:42 [ "e6"; "ber=1e-5"; "0" ]);
  Alcotest.(check int)
    "derive_seed(42, e6/ber=1e-5/1) pinned" 4322269616280044835
    (Sim.Rng.derive_seed ~root:42 [ "e6"; "ber=1e-5"; "1" ])

let test_derive_component_boundaries () =
  (* length-prefixed absorption: moving a byte across a component
     boundary must give a different seed *)
  Alcotest.(check bool) "ab|c differs from a|bc" false
    (Sim.Rng.derive_seed ~root:1 [ "ab"; "c" ]
    = Sim.Rng.derive_seed ~root:1 [ "a"; "bc" ]);
  Alcotest.(check bool) "root matters" false
    (Sim.Rng.derive_seed ~root:1 [ "x" ] = Sim.Rng.derive_seed ~root:2 [ "x" ])

let test_derive_stream_independence () =
  (* Sibling replicate streams must not overlap: 10k draws from each of
     several derived generators are pairwise distinct. With 64-bit
     outputs a single collision among 40k draws has probability ~4e-11,
     so any hit means real structure (e.g. one stream lagging another). *)
  let draws_per_stream = 10_000 in
  let seen = Hashtbl.create (8 * draws_per_stream) in
  List.iter
    (fun replicate ->
      let rng =
        Sim.Rng.derive ~root:42 [ "e6"; "ber=1e-5"; string_of_int replicate ]
      in
      for _ = 1 to draws_per_stream do
        let v = Sim.Rng.bits64 rng in
        (match Hashtbl.find_opt seen v with
        | Some other ->
            Alcotest.failf "streams %d and %d share value %Ld" replicate other v
        | None -> ());
        Hashtbl.add seen v replicate
      done)
    [ 0; 1; 2; 3 ]

let prop_binomial_low_np_fer =
  (* Random frame sizes and low BERs: the empirical frame-error rate must
     track 1 - (1-p)^n. Filtered to expected hit counts >= 300 so the
     25% tolerance is ~4 sigma of sampling noise. *)
  QCheck2.Test.make ~name:"rng binomial low-np FER matches closed form"
    ~count:10
    QCheck2.Gen.(triple (int_range 100 16_384) (float_range 4.5 6.5) int)
    (fun (bits, neg_exp, seed) ->
      let ber = 10. ** -.neg_exp in
      let expected = 1. -. exp (float_of_int bits *. log1p (-.ber)) in
      QCheck2.assume (expected >= 0.005);
      let samples = 60_000 in
      let r = Sim.Rng.create ~seed in
      let errored = ref 0 in
      for _ = 1 to samples do
        if Sim.Rng.binomial r ~n:bits ~p:ber > 0 then incr errored
      done;
      let fer = float_of_int !errored /. float_of_int samples in
      Float.abs (fer -. expected) <= 0.25 *. expected)

let prop_int_in_bounds =
  QCheck2.Test.make ~name:"rng int always in [0,n)" ~count:500
    QCheck2.Gen.(pair (int_range 1 1_000_000) int)
    (fun (n, seed) ->
      let r = Sim.Rng.create ~seed in
      let x = Sim.Rng.int r n in
      x >= 0 && x < n)

let prop_float_in_bounds =
  QCheck2.Test.make ~name:"rng float always in [0,x)" ~count:500
    QCheck2.Gen.(pair (float_range 1e-6 1e6) int)
    (fun (x, seed) ->
      let r = Sim.Rng.create ~seed in
      let v = Sim.Rng.float r x in
      v >= 0. && v < x)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy preserves state" `Quick test_copy_preserves_state;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "unit_float range" `Quick test_unit_float_range;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli mean" `Slow test_bernoulli_mean;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "geometric support+mean" `Slow test_geometric_support_and_mean;
    Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
    Alcotest.test_case "binomial small range" `Quick test_binomial_small_exact_range;
    Alcotest.test_case "binomial large mean" `Slow test_binomial_large_mean;
    Alcotest.test_case "binomial FER at BER 1e-6" `Slow
      test_binomial_low_ber_1e6;
    Alcotest.test_case "binomial FER at BER 1e-7" `Slow
      test_binomial_low_ber_1e7;
    Alcotest.test_case "binomial inversion mean" `Slow
      test_binomial_inversion_mean;
    Alcotest.test_case "binomial high-p symmetry" `Slow
      test_binomial_high_p_symmetry;
    Alcotest.test_case "binomial edges" `Quick test_binomial_edges;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "derive determinism" `Quick test_derive_determinism;
    Alcotest.test_case "derive stability (pinned)" `Quick test_derive_stability;
    Alcotest.test_case "derive component boundaries" `Quick
      test_derive_component_boundaries;
    Alcotest.test_case "derive stream independence" `Slow
      test_derive_stream_independence;
    QCheck_alcotest.to_alcotest prop_binomial_low_np_fer;
    QCheck_alcotest.to_alcotest prop_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_float_in_bounds;
  ]
