(* Tests for the replicated experiment-matrix runner: the determinism
   contract (--jobs must not affect results), the fold into Online
   stats, seed derivation plumbing, and the Matrix_report codec. *)

let render ?(with_meta = false) r =
  Bench_report.Json.to_string
    (Bench_report.Matrix_report.to_json ~with_meta r)

(* Synthetic experiment: cheap, seed-sensitive points. The [spin] draws
   make sibling tasks consume different amounts of their stream, so any
   cross-task RNG sharing or ordering bug shows up as a value change. *)
let synth_experiment ~id ~n_points =
  {
    Runner.id;
    name = "synthetic " ^ id;
    points =
      List.init n_points (fun i ->
          {
            Runner.label = Printf.sprintf "p%d" i;
            run =
              (fun ~seed ->
                let rng = Sim.Rng.create ~seed in
                for _ = 1 to 1 + (i mod 7) do
                  ignore (Sim.Rng.bits64 rng : int64)
                done;
                [
                  ("x", Sim.Rng.unit_float rng);
                  ("y", float_of_int (Sim.Rng.int rng 1000));
                ]);
          });
  }

let test_jobs_do_not_change_results () =
  let exps =
    [ synth_experiment ~id:"a" ~n_points:3; synth_experiment ~id:"b" ~n_points:5 ]
  in
  let seq = Runner.run ~jobs:1 ~root_seed:7 ~replicates:4 exps in
  List.iter
    (fun jobs ->
      let par = Runner.run ~jobs ~root_seed:7 ~replicates:4 exps in
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d json identical to jobs=1" jobs)
        (render seq) (render par))
    [ 2; 3; 8 ]

let prop_parallel_equals_sequential =
  QCheck2.Test.make ~name:"runner: --jobs 4 == --jobs 1 (byte-identical json)"
    ~count:30
    QCheck2.Gen.(
      triple (int_range 1 4) (int_range 1 3) (int_range 0 1_000_000))
    (fun (n_points, replicates, root_seed) ->
      let exps = [ synth_experiment ~id:"q" ~n_points ] in
      let a = Runner.run ~jobs:1 ~root_seed ~replicates exps in
      let b = Runner.run ~jobs:4 ~root_seed ~replicates exps in
      render a = render b)

let test_real_scenario_point_parallel () =
  (* One tiny real simulation point: exercises the whole engine /
     channel / protocol stack under domain-parallel replication. *)
  let cfg = { Experiments.Scenario.default with Experiments.Scenario.n_frames = 60 } in
  let exps =
    [
      {
        Runner.id = "e-smoke";
        name = "scenario smoke";
        points =
          [
            Experiments.Scenario.matrix_point ~label:"lams" cfg
              (Experiments.Scenario.Lams
                 (Experiments.Scenario.default_lams_params cfg));
          ];
      };
    ]
  in
  let a = Runner.run ~jobs:1 ~root_seed:11 ~replicates:2 exps in
  let b = Runner.run ~jobs:4 ~root_seed:11 ~replicates:2 exps in
  Alcotest.(check bool) "equal_results" true
    (Bench_report.Matrix_report.equal_results a b);
  Alcotest.(check string) "byte-identical json" (render a) (render b)

let test_fold_counts_and_spread () =
  let constant =
    {
      Runner.id = "c";
      name = "constants";
      points =
        [
          { Runner.label = "const"; run = (fun ~seed:_ -> [ ("v", 2.5) ]) };
          {
            Runner.label = "seeded";
            run = (fun ~seed -> [ ("v", float_of_int (seed land 0xff)) ]);
          };
        ];
    }
  in
  let r = Runner.run ~jobs:2 ~root_seed:5 ~replicates:8 [ constant ] in
  Alcotest.(check int) "replicates recorded" 8
    r.Bench_report.Matrix_report.replicates;
  Alcotest.(check int) "root seed recorded" 5
    r.Bench_report.Matrix_report.root_seed;
  match r.Bench_report.Matrix_report.experiments with
  | [ e ] ->
      let stat label =
        let p =
          List.find
            (fun (p : Bench_report.Matrix_report.point) -> p.label = label)
            e.Bench_report.Matrix_report.points
        in
        List.assoc "v" p.Bench_report.Matrix_report.metrics
      in
      let c = stat "const" in
      Alcotest.(check int) "count = replicates" 8
        c.Bench_report.Matrix_report.count;
      Alcotest.(check (float 1e-12)) "constant mean" 2.5 c.mean;
      Alcotest.(check (float 1e-12)) "constant stddev 0" 0. c.stddev;
      Alcotest.(check (float 1e-12)) "constant ci95 0" 0. c.ci95;
      let s = stat "seeded" in
      Alcotest.(check bool) "derived seeds vary across replicates" true
        (s.Bench_report.Matrix_report.stddev > 0.)
  | _ -> Alcotest.fail "expected one experiment"

let test_seed_of_task_matches_rng_derivation () =
  Alcotest.(check int) "runner seed = Rng.derive_seed"
    (Sim.Rng.derive_seed ~root:42 [ "e6"; "ber=1e-5"; "0" ])
    (Runner.seed_of_task ~root_seed:42 ~experiment_id:"e6"
       ~point_label:"ber=1e-5" ~replicate:0)

let test_task_count () =
  let exps =
    [ synth_experiment ~id:"a" ~n_points:3; synth_experiment ~id:"b" ~n_points:2 ]
  in
  Alcotest.(check int) "task count" 20 (Runner.task_count ~replicates:4 exps)

let test_duplicate_ids_rejected () =
  let exps =
    [ synth_experiment ~id:"dup" ~n_points:1; synth_experiment ~id:"dup" ~n_points:1 ]
  in
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Runner.run: duplicate experiment id \"dup\"") (fun () ->
      ignore
        (Runner.run ~jobs:1 ~replicates:1 exps : Bench_report.Matrix_report.t))

let test_inconsistent_metrics_rejected () =
  let flaky =
    {
      Runner.id = "f";
      name = "flaky metrics";
      points =
        [
          {
            Runner.label = "p";
            run =
              (fun ~seed ->
                if seed mod 2 = 0 then [ ("a", 1.) ] else [ ("b", 1.) ]);
          };
        ];
    }
  in
  (* seeds are hash-derived, so among 16 replicates both parities occur *)
  try
    ignore
      (Runner.run ~jobs:1 ~replicates:16 [ flaky ]
        : Bench_report.Matrix_report.t);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_task_exception_propagates () =
  let boom =
    {
      Runner.id = "x";
      name = "boom";
      points =
        [ { Runner.label = "p"; run = (fun ~seed:_ -> failwith "boom") } ];
    }
  in
  List.iter
    (fun jobs ->
      try
        ignore
          (Runner.run ~jobs ~replicates:2 [ boom ]
            : Bench_report.Matrix_report.t);
        Alcotest.fail "expected Failure"
      with Failure m -> Alcotest.(check string) "task error re-raised" "boom" m)
    [ 1; 4 ]

let test_report_roundtrip () =
  let exps = [ synth_experiment ~id:"rt" ~n_points:2 ] in
  let r = Runner.run ~jobs:2 ~root_seed:3 ~replicates:3 exps in
  let r =
    {
      r with
      Bench_report.Matrix_report.meta =
        Some (Bench_report.Matrix_report.collect_meta ~jobs:2);
    }
  in
  match Bench_report.Matrix_report.of_json (Bench_report.Matrix_report.to_json r) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok r' ->
      Alcotest.(check string) "roundtrip preserves document"
        (render ~with_meta:true r) (render ~with_meta:true r');
      Alcotest.(check bool) "results equal after roundtrip" true
        (Bench_report.Matrix_report.equal_results r r')

let test_wrong_schema_rejected () =
  let exps = [ synth_experiment ~id:"sv" ~n_points:1 ] in
  let r = Runner.run ~jobs:1 ~replicates:1 exps in
  let doc =
    Bench_report.Matrix_report.to_json
      { r with Bench_report.Matrix_report.schema_version = 999 }
  in
  match Bench_report.Matrix_report.of_json doc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "schema_version 999 should be rejected"

let suite =
  [
    Alcotest.test_case "jobs do not change results" `Quick
      test_jobs_do_not_change_results;
    QCheck_alcotest.to_alcotest prop_parallel_equals_sequential;
    Alcotest.test_case "real scenario point, parallel" `Slow
      test_real_scenario_point_parallel;
    Alcotest.test_case "fold counts and spread" `Quick
      test_fold_counts_and_spread;
    Alcotest.test_case "seed_of_task = Rng.derive_seed" `Quick
      test_seed_of_task_matches_rng_derivation;
    Alcotest.test_case "task count" `Quick test_task_count;
    Alcotest.test_case "duplicate ids rejected" `Quick
      test_duplicate_ids_rejected;
    Alcotest.test_case "inconsistent metrics rejected" `Quick
      test_inconsistent_metrics_rejected;
    Alcotest.test_case "task exception propagates" `Quick
      test_task_exception_propagates;
    Alcotest.test_case "matrix report roundtrip" `Quick test_report_roundtrip;
    Alcotest.test_case "wrong schema rejected" `Quick test_wrong_schema_rejected;
  ]
