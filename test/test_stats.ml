(* Tests for the stats substrate: online accumulators, histograms,
   series and tables. *)

let feq name ?(eps = 1e-9) a b =
  if Float.abs (a -. b) > eps then Alcotest.failf "%s: %g != %g" name a b

let test_online_basics () =
  let o = Stats.Online.create () in
  List.iter (Stats.Online.add o) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.Online.count o);
  feq "mean" (Stats.Online.mean o) 5.;
  feq "variance" ~eps:1e-9 (Stats.Online.variance o) (32. /. 7.);
  feq "min" (Stats.Online.min o) 2.;
  feq "max" (Stats.Online.max o) 9.;
  feq "sum" (Stats.Online.sum o) 40.

let test_online_empty () =
  let o = Stats.Online.create () in
  Alcotest.(check bool) "mean is nan" true (Float.is_nan (Stats.Online.mean o));
  feq "variance 0" (Stats.Online.variance o) 0.;
  feq "ci 0" (Stats.Online.ci95_halfwidth o) 0.

let test_online_single () =
  let o = Stats.Online.create () in
  Stats.Online.add o 42.;
  feq "mean" (Stats.Online.mean o) 42.;
  feq "variance" (Stats.Online.variance o) 0.

let test_online_ci95_student_t () =
  (* Small replicate counts must use Student-t critical values, not the
     normal 1.96. For n samples with stddev s, halfwidth is
     t_{0.975, n-1} * s / sqrt n. *)
  let halfwidth data =
    let o = Stats.Online.create () in
    List.iter (Stats.Online.add o) data;
    (Stats.Online.ci95_halfwidth o, Stats.Online.stddev o)
  in
  (* n=2, df=1: t = 12.706 *)
  let hw, s = halfwidth [ 1.; 3. ] in
  feq "n=2 halfwidth" ~eps:1e-6 hw (12.706 *. s /. sqrt 2.);
  (* n=5, df=4: t = 2.776 *)
  let hw, s = halfwidth [ 1.; 2.; 3.; 4.; 5. ] in
  feq "n=5 halfwidth" ~eps:1e-6 hw (2.776 *. s /. sqrt 5.);
  (* large n converges to the normal value *)
  let o = Stats.Online.create () in
  for i = 1 to 500 do
    Stats.Online.add o (float_of_int (i mod 7))
  done;
  feq "n=500 halfwidth" ~eps:1e-6
    (Stats.Online.ci95_halfwidth o)
    (1.96 *. Stats.Online.stddev o /. sqrt 500.)

let test_online_merge () =
  let a = Stats.Online.create () and b = Stats.Online.create () in
  let whole = Stats.Online.create () in
  let data = List.init 100 (fun i -> float_of_int (((i * 37) mod 11) - 5)) in
  List.iteri
    (fun i x ->
      Stats.Online.add whole x;
      Stats.Online.add (if i mod 2 = 0 then a else b) x)
    data;
  let merged = Stats.Online.merge a b in
  Alcotest.(check int) "count" (Stats.Online.count whole) (Stats.Online.count merged);
  feq "mean" ~eps:1e-9 (Stats.Online.mean whole) (Stats.Online.mean merged);
  feq "variance" ~eps:1e-9 (Stats.Online.variance whole) (Stats.Online.variance merged);
  feq "min" (Stats.Online.min whole) (Stats.Online.min merged);
  feq "max" (Stats.Online.max whole) (Stats.Online.max merged)

let test_online_merge_empty () =
  let a = Stats.Online.create () and b = Stats.Online.create () in
  Stats.Online.add b 3.;
  let m1 = Stats.Online.merge a b and m2 = Stats.Online.merge b a in
  feq "empty-left mean" (Stats.Online.mean m1) 3.;
  feq "empty-right mean" (Stats.Online.mean m2) 3.

let prop_merge_equals_whole =
  QCheck2.Test.make ~name:"online merge == single accumulator" ~count:200
    QCheck2.Gen.(pair (list (float_range (-1000.) 1000.)) (list (float_range (-1000.) 1000.)))
    (fun (xs, ys) ->
      let a = Stats.Online.create () and b = Stats.Online.create () in
      let whole = Stats.Online.create () in
      List.iter (fun x -> Stats.Online.add a x; Stats.Online.add whole x) xs;
      List.iter (fun y -> Stats.Online.add b y; Stats.Online.add whole y) ys;
      let m = Stats.Online.merge a b in
      Stats.Online.count m = Stats.Online.count whole
      && (Stats.Online.count m = 0
         || Float.abs (Stats.Online.mean m -. Stats.Online.mean whole)
            <= 1e-6 *. (1. +. Float.abs (Stats.Online.mean whole))))

let test_histogram_basic () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; -1.; 10.; 15. ];
  Alcotest.(check int) "count" 7 (Stats.Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Stats.Histogram.overflow h);
  Alcotest.(check int) "bin 0" 1 (Stats.Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (Stats.Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (Stats.Histogram.bin_count h 9)

let test_histogram_bounds () =
  let h = Stats.Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  let lo, hi = Stats.Histogram.bin_bounds h 1 in
  feq "bin lo" lo 0.25;
  feq "bin hi" hi 0.5;
  Alcotest.check_raises "bad bin" (Invalid_argument "Histogram.bin_bounds: index out of range")
    (fun () -> ignore (Stats.Histogram.bin_bounds h 4))

let test_histogram_percentile () =
  let h = Stats.Histogram.create ~lo:0. ~hi:100. ~bins:100 in
  for i = 0 to 99 do
    Stats.Histogram.add h (float_of_int i +. 0.5)
  done;
  let p50 = Stats.Histogram.percentile h 50. in
  if Float.abs (p50 -. 50.) > 1.5 then Alcotest.failf "p50 = %g" p50;
  let p95 = Stats.Histogram.percentile h 95. in
  if Float.abs (p95 -. 95.) > 1.5 then Alcotest.failf "p95 = %g" p95

let test_histogram_empty_percentile () =
  let h = Stats.Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  Alcotest.(check bool) "nan when empty" true
    (Float.is_nan (Stats.Histogram.percentile h 50.))

let test_series_roundtrip () =
  let s = Stats.Series.create ~name:"x" in
  Stats.Series.add s ~x:1. ~y:10.;
  Stats.Series.add s ~x:2. ~y:20.;
  Alcotest.(check int) "length" 2 (Stats.Series.length s);
  Alcotest.(check (list (float 1e-9))) "xs" [ 1.; 2. ] (Stats.Series.xs s);
  Alcotest.(check (list (float 1e-9))) "ys" [ 10.; 20. ] (Stats.Series.ys s);
  let doubled = Stats.Series.map_y s ~f:(fun y -> 2. *. y) in
  Alcotest.(check (list (float 1e-9))) "map_y" [ 20.; 40. ] (Stats.Series.ys doubled)

let test_series_table_renders () =
  let a = Stats.Series.create ~name:"a" and b = Stats.Series.create ~name:"b" in
  Stats.Series.add a ~x:1. ~y:2.;
  Stats.Series.add b ~x:1. ~y:3.;
  let out = Format.asprintf "%a" Stats.Series.pp_table [ a; b ] in
  Alcotest.(check bool) "has header a" true
    (Astring.String.is_infix ~affix:"a" out);
  Alcotest.(check bool) "nonempty" true (String.length out > 10)

let test_series_ascii_plot () =
  let s1 = Stats.Series.create ~name:"up" in
  for i = 0 to 9 do
    Stats.Series.add s1 ~x:(float_of_int i) ~y:(float_of_int (i * i))
  done;
  let out = Format.asprintf "%a" (fun ppf l -> Stats.Series.pp_ascii_plot ppf l) [ s1 ] in
  Alcotest.(check bool) "axis ranges shown" true
    (Astring.String.is_infix ~affix:"y: [0, 81]" out);
  Alcotest.(check bool) "marker drawn" true (Astring.String.is_infix ~affix:"1" out);
  (* empty input does not raise *)
  let empty = Format.asprintf "%a" (fun ppf l -> Stats.Series.pp_ascii_plot ppf l) [] in
  Alcotest.(check bool) "empty handled" true (String.length empty > 0)

let test_table_render () =
  let t = Stats.Table.create ~header:[ "name"; "value" ] in
  Stats.Table.add_row t [ "x"; "1" ];
  Stats.Table.add_float_row t "y" [ 2.5 ];
  let s = Stats.Table.to_string t in
  Alcotest.(check bool) "header present" true (Astring.String.is_infix ~affix:"name" s);
  Alcotest.(check bool) "row x" true (Astring.String.is_infix ~affix:"x" s);
  Alcotest.(check bool) "float formatted" true (Astring.String.is_infix ~affix:"2.5" s)

let test_table_ragged_rows () =
  let t = Stats.Table.create ~header:[ "a" ] in
  Stats.Table.add_row t [ "1"; "2"; "3" ];
  Stats.Table.add_row t [];
  let s = Stats.Table.to_string t in
  Alcotest.(check bool) "extends columns" true (Astring.String.is_infix ~affix:"3" s)

let suite =
  [
    Alcotest.test_case "online basics" `Quick test_online_basics;
    Alcotest.test_case "online empty" `Quick test_online_empty;
    Alcotest.test_case "online single" `Quick test_online_single;
    Alcotest.test_case "online ci95 student-t" `Quick
      test_online_ci95_student_t;
    Alcotest.test_case "online merge" `Quick test_online_merge;
    Alcotest.test_case "online merge empty" `Quick test_online_merge_empty;
    QCheck_alcotest.to_alcotest prop_merge_equals_whole;
    Alcotest.test_case "histogram basics" `Quick test_histogram_basic;
    Alcotest.test_case "histogram bounds" `Quick test_histogram_bounds;
    Alcotest.test_case "histogram percentile" `Quick test_histogram_percentile;
    Alcotest.test_case "histogram empty percentile" `Quick test_histogram_empty_percentile;
    Alcotest.test_case "series roundtrip" `Quick test_series_roundtrip;
    Alcotest.test_case "series table" `Quick test_series_table_renders;
    Alcotest.test_case "series ascii plot" `Quick test_series_ascii_plot;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table ragged rows" `Quick test_table_ragged_rows;
  ]
