(* Tests for the lib/trace flight recorder: JSONL schema roundtrip,
   byte-determinism across runs and worker counts, and the
   oracle-violation flight dump. *)

(* --- event / schema roundtrip --------------------------------------- *)

let sample_events =
  [
    (* payloads kept within the 16-byte label so re-encoding is
       byte-stable; truncation has its own test below *)
    { Trace.Event.i = 0; time = 0.; kind = Probe (Dlc.Probe.Offered { payload = "frame-000-xyz" }) };
    { Trace.Event.i = 1; time = 1.5e-5; kind = Probe (Dlc.Probe.Tx { seq = 3; payload = "p"; retx = false }) };
    { Trace.Event.i = 2; time = 2e-5; kind = Probe (Dlc.Probe.Tx { seq = 3; payload = "p"; retx = true }) };
    { Trace.Event.i = 3; time = 0.25; kind = Probe (Dlc.Probe.Cp_emitted { cp_seq = 4; next_expected = 9; enforced = true; stop_go = false; naks = [ 5; 7 ] }) };
    { Trace.Event.i = 4; time = 0.3; kind = Fault { link = "forward"; action = "drop"; frame = "I seq=5" } };
    { Trace.Event.i = 5; time = 0.5; kind = Violation { invariant = "released-undelivered"; detail = "seq 5" } };
  ]

let test_event_roundtrip () =
  List.iter
    (fun (e : Trace.Event.t) ->
      let line = Trace.Event.to_line e in
      match Trace.Event.of_line line with
      | Error msg -> Alcotest.failf "roundtrip of %s: %s" line msg
      | Ok back ->
          Alcotest.(check int) "index" e.i back.i;
          Alcotest.(check (float 0.)) "time" e.time back.time;
          Alcotest.(check string) "re-encode is stable"
            line (Trace.Event.to_line back))
    sample_events

let test_event_payload_truncation () =
  let long = String.make 100 'x' in
  let e =
    { Trace.Event.i = 0; time = 0.; kind = Probe (Dlc.Probe.Offered { payload = long }) }
  in
  match Trace.Event.of_line (Trace.Event.to_line e) with
  | Error msg -> Alcotest.fail msg
  | Ok back -> (
      match back.kind with
      | Probe (Dlc.Probe.Offered { payload }) ->
          Alcotest.(check string) "truncated to label"
            (Trace.Event.payload_label long) payload
      | _ -> Alcotest.fail "kind changed")

let test_schema_accepts_stream () =
  let content =
    String.concat ""
      (List.map (fun e -> Trace.Event.to_line e ^ "\n") sample_events)
  in
  match Trace.Schema.validate content with
  | Ok n -> Alcotest.(check int) "event count" (List.length sample_events) n
  | Error msg -> Alcotest.fail msg

let test_schema_rejects () =
  let reject what content =
    match Trace.Schema.validate content with
    | Ok _ -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  reject "non-JSON line" "not json\n";
  reject "missing fields" "{\"i\":0}\n";
  let line i = Trace.Event.to_line { (List.hd sample_events) with i } in
  reject "non-increasing index" (line 3 ^ "\n" ^ line 3 ^ "\n");
  reject "decreasing index" (line 3 ^ "\n" ^ line 1 ^ "\n")

(* --- recorder + scenario determinism -------------------------------- *)

let drop5_spec =
  Channel.Fault.(Rules [ rule ~copies:1 (I_nth 5) Drop ])

let traced_run seed =
  (* Small checked scenario with a scripted forward drop; returns the
     full JSONL stream and the recorder. *)
  let recorder = Trace.Recorder.create ~name:"test" () in
  let buf = Buffer.create 4096 in
  Trace.Recorder.set_sink recorder (fun e ->
      Buffer.add_string buf (Trace.Event.to_line e);
      Buffer.add_char buf '\n');
  let cfg =
    {
      Experiments.Scenario.default with
      seed;
      n_frames = 30;
      ber = 0.;
      cframe_ber = 0.;
      horizon = 5.;
    }
  in
  let proto =
    Experiments.Scenario.Lams (Experiments.Scenario.default_lams_params cfg)
  in
  let _result, violations =
    Experiments.Scenario.run_checked ~faults:drop5_spec ~recorder cfg proto
  in
  (Buffer.contents buf, recorder, violations)

let test_same_seed_same_bytes () =
  let a, ra, va = traced_run 42 and b, rb, vb = traced_run 42 in
  Alcotest.(check string) "byte-identical JSONL" a b;
  Alcotest.(check int) "same event count"
    (Trace.Recorder.events_recorded ra)
    (Trace.Recorder.events_recorded rb);
  Alcotest.(check int) "same violations" (List.length va) (List.length vb);
  Alcotest.(check bool) "stream is non-trivial" true
    (Trace.Recorder.events_recorded ra > 30);
  match Trace.Schema.validate a with
  | Ok n ->
      Alcotest.(check int) "validates with full count"
        (Trace.Recorder.events_recorded ra) n
  | Error msg -> Alcotest.fail msg

let noisy_run seed =
  (* On a clean channel with a scripted fault the seed changes nothing
     (that is the point of the determinism tests above); to see the seed
     in the trace the channel must be lossy. *)
  let recorder = Trace.Recorder.create ~name:"noisy" () in
  let buf = Buffer.create 4096 in
  Trace.Recorder.set_sink recorder (fun e ->
      Buffer.add_string buf (Trace.Event.to_line e);
      Buffer.add_char buf '\n');
  let cfg =
    { Experiments.Scenario.default with seed; n_frames = 50; horizon = 5. }
  in
  let proto =
    Experiments.Scenario.Lams (Experiments.Scenario.default_lams_params cfg)
  in
  let _ = Experiments.Scenario.run ~recorder cfg proto in
  Buffer.contents buf

let test_different_seed_different_bytes () =
  let a = noisy_run 42 and b = noisy_run 43 in
  Alcotest.(check bool) "different seeds differ" false (String.equal a b)

let test_fault_events_recorded () =
  let jsonl, recorder, _ = traced_run 7 in
  Alcotest.(check bool) "fault hit recorded" true
    (Trace.Recorder.metrics recorder |> fun m -> Trace.Metrics.count m "fault" >= 1);
  Alcotest.(check bool) "fault line present" true
    (Astring.String.is_infix ~affix:"\"ev\":\"fault\"" jsonl)

(* --- flight dump on oracle violation -------------------------------- *)

let test_flight_dump_contains_offender () =
  let { Experiments.Disaster.recorder; violations } =
    Experiments.Disaster.run ()
  in
  Alcotest.(check bool) "at least one violation" true (violations <> []);
  match Trace.Recorder.flight recorder with
  | None -> Alcotest.fail "no flight dump frozen"
  | Some events ->
      let last = List.nth events (List.length events - 1) in
      (match last.Trace.Event.kind with
      | Violation { invariant; _ } ->
          Alcotest.(check string) "dump ends with the violation"
            "released-undelivered" invariant
      | _ -> Alcotest.fail "flight dump does not end with a violation");
      (* The disaster drops frame 5's only copy; the fatal release of
         that undelivered payload must still be in the ring. *)
      let released_5 =
        List.exists
          (fun (e : Trace.Event.t) ->
            match e.kind with
            | Probe (Dlc.Probe.Released { seq = 5; _ }) -> true
            | _ -> false)
          events
      in
      Alcotest.(check bool) "release of dropped frame in dump" true
        released_5;
      let fault_hit =
        List.exists
          (fun (e : Trace.Event.t) ->
            match e.kind with
            | Fault { action = "drop"; _ } -> true
            | _ -> false)
          events
      in
      Alcotest.(check bool) "fault hit in dump" true fault_hit;
      (* The frozen dump itself must be valid JSONL. *)
      (match Trace.Recorder.flight_jsonl recorder with
      | None -> Alcotest.fail "no flight jsonl"
      | Some content -> (
          match Trace.Schema.validate content with
          | Ok n -> Alcotest.(check int) "dump validates" (List.length events) n
          | Error msg -> Alcotest.fail msg))

let test_flight_freezes_at_first_violation () =
  let { Experiments.Disaster.recorder; violations = _ } =
    Experiments.Disaster.run ~frames:40 ()
  in
  match Trace.Recorder.flight recorder with
  | None -> Alcotest.fail "no flight dump"
  | Some events ->
      let n_violations_in_dump =
        List.length
          (List.filter
             (fun (e : Trace.Event.t) ->
               match e.kind with Violation _ -> true | _ -> false)
             events)
      in
      Alcotest.(check int) "exactly one violation in frozen dump" 1
        n_violations_in_dump;
      (* recording continued past the freeze *)
      Alcotest.(check bool) "recorder kept counting" true
        (Trace.Recorder.events_recorded recorder > List.length events)

(* --- file capture: --jobs 1 vs --jobs 2 byte-identical --------------- *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let run_matrix_traced ~jobs ~dir =
  Trace.Config.set (Some { Trace.Config.dir; capacity = 128 });
  Fun.protect
    ~finally:(fun () -> Trace.Config.set None)
    (fun () ->
      let exps =
        [
          {
            Runner.id = "disaster";
            name = "trace disaster";
            points = [ Experiments.Disaster.matrix_point ~label:"drop5" ];
          };
        ]
      in
      Runner.run ~jobs ~root_seed:7 ~replicates:2 exps)

let test_jobs_byte_identical_traces () =
  let d1 = temp_dir "trace-j1" and d2 = temp_dir "trace-j2" in
  Fun.protect
    ~finally:(fun () -> rm_rf d1; rm_rf d2)
    (fun () ->
      let r1 = run_matrix_traced ~jobs:1 ~dir:d1 in
      let r2 = run_matrix_traced ~jobs:2 ~dir:d2 in
      Alcotest.(check string) "matrix reports identical"
        (Bench_report.Json.to_string
           (Bench_report.Matrix_report.to_json ~with_meta:false r1))
        (Bench_report.Json.to_string
           (Bench_report.Matrix_report.to_json ~with_meta:false r2));
      let ls d = Array.to_list (Sys.readdir d) |> List.sort compare in
      let f1 = ls d1 and f2 = ls d2 in
      Alcotest.(check (list string)) "same trace files" f1 f2;
      Alcotest.(check bool) "traces were written" true (f1 <> []);
      Alcotest.(check bool) "flight dumps among them" true
        (List.exists
           (fun f -> Filename.check_suffix f ".flight.jsonl")
           f1);
      List.iter
        (fun f ->
          Alcotest.(check string)
            (Printf.sprintf "%s byte-identical" f)
            (read_file (Filename.concat d1 f))
            (read_file (Filename.concat d2 f));
          if Filename.check_suffix f ".jsonl" then
            match Trace.Schema.validate_file (Filename.concat d1 f) with
            | Ok _ -> ()
            | Error msg -> Alcotest.failf "%s: %s" f msg)
        f1)

(* --- metrics replay ------------------------------------------------- *)

let test_metrics_replay_matches_live () =
  (* Accumulating metrics from the JSONL stream must reproduce the
     live recorder's numbers (the [trace summary] contract). *)
  let jsonl, recorder, _ = traced_run 5 in
  let live = Trace.Recorder.metrics recorder in
  let replayed = Trace.Metrics.create () in
  String.split_on_char '\n' jsonl
  |> List.iter (fun line ->
         if line <> "" then
           match Trace.Event.of_line line with
           | Ok e -> Trace.Metrics.observe replayed e
           | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "event totals" (Trace.Metrics.events live)
    (Trace.Metrics.events replayed);
  let live_fields = Trace.Metrics.to_fields live
  and replay_fields = Trace.Metrics.to_fields replayed in
  Alcotest.(check int) "field counts" (List.length live_fields)
    (List.length replay_fields);
  List.iter2
    (fun (ka, va) (kb, vb) ->
      Alcotest.(check string) "field name" ka kb;
      let both_nan = Float.is_nan va && Float.is_nan vb in
      if not (both_nan || va = vb) then
        Alcotest.failf "field %s: live %g, replayed %g" ka va vb)
    live_fields replay_fields

let suite =
  [
    Alcotest.test_case "event jsonl roundtrip" `Quick test_event_roundtrip;
    Alcotest.test_case "payload truncation" `Quick test_event_payload_truncation;
    Alcotest.test_case "schema accepts stream" `Quick test_schema_accepts_stream;
    Alcotest.test_case "schema rejects malformed" `Quick test_schema_rejects;
    Alcotest.test_case "same seed, same bytes" `Quick test_same_seed_same_bytes;
    Alcotest.test_case "different seed, different bytes" `Quick
      test_different_seed_different_bytes;
    Alcotest.test_case "fault events recorded" `Quick test_fault_events_recorded;
    Alcotest.test_case "flight dump contains offender" `Quick
      test_flight_dump_contains_offender;
    Alcotest.test_case "flight freezes at first violation" `Quick
      test_flight_freezes_at_first_violation;
    Alcotest.test_case "jobs 1 vs 2 byte-identical traces" `Slow
      test_jobs_byte_identical_traces;
    Alcotest.test_case "metrics replay matches live" `Quick
      test_metrics_replay_matches_live;
  ]
